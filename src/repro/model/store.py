"""Interned fact store: the chase engine's integer data plane.

The legacy hot path pays Python object costs per probe: every join
step hashes a ``(Predicate, args)`` tuple, allocates :class:`Atom`
objects for candidate results, and intersects ``Set[Atom]`` buckets.
:class:`FactStore` dictionary-encodes the data plane instead:

* predicates and ground terms are interned to dense integer ids;
* each predicate's facts are packed tuples of term ids;
* a positional posting index replaces the per-position atom buckets,
  so joins run over packed int tuples instead of boxed terms;
* labelled nulls are invented as bare ids with a *decode recipe*
  (rule id, variable, label names, label term ids) and only
  materialised as :class:`~repro.model.terms.Null` objects at API
  boundaries — :meth:`term_of_id` builds the exact structural null the
  legacy engine would have built, so decoded instances compare equal
  atom for atom and fingerprint identically.

Two storage layouts are selectable per store (``layout=`` or the
``REPRO_STORE_LAYOUT`` environment knob):

``arrays`` (the default)
    The columnar layout.  Facts over a predicate live in one
    insertion-ordered row table (their position is the fact's *row
    id*); each ``(predicate, position, term)`` posting bucket is an
    append-only column holding the facts in ascending row order.
    Because the store is add-only and a fact enters each bucket at
    most once, the columns are sorted by row id and deduplicated *by
    construction* — nothing is ever sorted or hashed on the append
    path.  Multi-position *enumeration* walks the smallest column and
    filters it by direct position compares; multi-position *existence*
    tests (the restricted chase's head-satisfaction probe) are one
    hash lookup in a lazily built projection index per position
    signature, carrying a dirty watermark that marks how far it has
    caught up with the row table (appends between probes cost nothing
    until a probe needs them).  Earlier iterations kept the columns as
    ``array('q')`` row ids galloped with cursors + ``bisect`` (lost:
    every probe re-boxed machine ints into Python objects) and
    intersected via per-column watermarked hash sets (lost: direct
    compares need no maintenance at all) — the packed ``array('q')``
    form survives as the snapshot wire format, where it belongs.

``sets``
    The PR 4 layout — one Python ``set`` of packed fact tuples per
    posting key, with the original driver loop above it — kept fully
    selectable so the equivalence suite and the layout benchmark
    (BENCH_engine.json E18) can compare old and new byte for byte.

The store is add-only (the chase never retracts facts), which is what
makes the incremental ``size``/``max_depth`` counters exact, the
posting columns naturally row-sorted, and the :meth:`snapshot`/
:meth:`restore` pair a faithful transfer format: a snapshot packs the
interner tables plus the per-predicate fact columns
(``array('q').tobytes()``) into one plain-bytes blob that a worker
process can restore without re-parsing or re-hashing any text.
Because every key in the hot dictionaries is an int or a tuple of
ints, derivation order is independent of string hash randomisation in
both layouts.
"""

from __future__ import annotations

import json
import os
import sys
from array import array
from time import perf_counter
from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Instance
from repro.model.terms import Constant, Null, Term, Variable

#: A fact as (predicate id, packed term-id tuple).
Fact = Tuple[int, Tuple[int, ...]]

#: Storage layouts selectable per store.
LAYOUTS = ("arrays", "sets")

#: Environment knob choosing the default layout (benchmark fallback).
LAYOUT_ENV_VAR = "REPRO_STORE_LAYOUT"

#: Shared empty posting list for index misses; never mutated.
_EMPTY_FACTS: Set[Tuple[int, ...]] = frozenset()  # type: ignore[assignment]

#: Magic prefix of the snapshot wire format (bumped on format changes).
SNAPSHOT_MAGIC = b"RSNP1\n"


def default_layout() -> str:
    """The process-default layout: ``REPRO_STORE_LAYOUT`` or ``arrays``."""
    layout = os.environ.get(LAYOUT_ENV_VAR, "arrays")
    if layout not in LAYOUTS:
        raise ValueError(
            f"{LAYOUT_ENV_VAR}={layout!r} is not a store layout; expected one of {LAYOUTS}"
        )
    return layout


class FactStore:
    """Interned predicates, terms and facts with positional posting lists."""

    __slots__ = (
        "layout",
        "_pid_of",
        "_pred_of",
        "_id_of_term",
        "_term_of_id",
        "_depth_of_id",
        "_null_ids",
        "_null_recipe",
        "_size",
        "_max_depth",
        "_has_foreign_nulls",
        "index_builds",
        "_index_profile",
        "restored_rounds",
        # sets layout
        "_facts",
        "_posting",
        # arrays layout
        "_rows",
        "_row_of",
        "_cols",
        "_built",
        "_proj",
        "_depth_marks",
    )

    def __init__(self, layout: Optional[str] = None) -> None:
        if layout is None:
            layout = default_layout()
        if layout not in LAYOUTS:
            raise ValueError(f"unknown layout {layout!r}, expected one of {LAYOUTS}")
        self.layout = layout
        self._pid_of: Dict[Predicate, int] = {}
        self._pred_of: List[Predicate] = []
        self._id_of_term: Dict[Term, int] = {}
        # Decoded term per id; ``None`` marks a store-invented null that
        # has not been materialised yet (see :meth:`term_of_id`).
        self._term_of_id: List[Optional[Term]] = []
        self._depth_of_id: List[int] = []
        # (rule_id, variable, label names, label ids) -> null term id.
        self._null_ids: Dict[Tuple[str, str, Tuple[str, ...], Tuple[int, ...]], int] = {}
        self._null_recipe: Dict[int, Tuple[str, str, Tuple[str, ...], Tuple[int, ...]]] = {}
        self._size = 0
        self._max_depth = 0
        # True once a null built *outside* the store has been interned
        # (e.g. the input instance is itself a chase result).  Invented
        # nulls must then unify structurally with the foreign ones, or
        # one null could end up with two ids and break fact dedup.
        self._has_foreign_nulls = False
        # Telemetry: lazy index constructions (posting columns +
        # projection signatures) since creation.  Maintained on the
        # cold build paths only — the add/probe hot paths never touch
        # it — so reading it is free visibility, not new overhead.
        self.index_builds = 0
        # Per-predicate build attribution: pid -> [builds, seconds].
        # Stamped only on the same cold paths as index_builds, so the
        # add/probe hot paths stay untouched; read by the profiler via
        # index_build_profile().
        self._index_profile: Dict[int, List] = {}
        # Rounds stamped into the snapshot this store was restored
        # from, if any (``None`` for stores built from scratch).  Lets
        # a resumed chase report its base-run round offset.
        self.restored_rounds: Optional[int] = None
        if layout == "sets":
            self._facts: List[Set[Tuple[int, ...]]] = []
            self._posting: Dict[Tuple[int, int, int], Set[Tuple[int, ...]]] = {}
        else:
            # Row tables: _rows[pid] lists packed facts in insertion
            # order (the index is the row id) and _row_of[pid] maps a
            # fact back to its row (containment + dedup).
            # _cols[pid][position] maps a term id to its posting column
            # (facts ascending by row id) — built *lazily* on the first
            # probe of that (predicate, position): positions no join
            # ever binds (most of a wide predicate) are never indexed,
            # and the add path only maintains the columns in
            # _built[pid].
            self._rows: List[List[Tuple[int, ...]]] = []
            self._row_of: List[Dict[Tuple[int, ...], int]] = []
            self._cols: List[List[Optional[Dict[int, List[Tuple[int, ...]]]]]] = []
            self._built: List[List[int]] = []
            # Projection existence indexes: per predicate, a position
            # signature (e.g. ``(0, 2)``) maps to a
            # ``[projection set, watermark, getter]`` triple used by
            # multi-position existence probes (see has_candidate).
            self._proj: List[Dict[Tuple[int, ...], list]] = []
            # Depth bookkeeping is deferred too: rows before this
            # per-predicate watermark have been folded into _max_depth.
            self._depth_marks: List[int] = []

    # -- interning ---------------------------------------------------------

    def intern_predicate(self, predicate: Predicate) -> int:
        """Dense id for ``predicate`` (created on first sight)."""
        pid = self._pid_of.get(predicate)
        if pid is None:
            pid = len(self._pred_of)
            self._pid_of[predicate] = pid
            self._pred_of.append(predicate)
            if self.layout == "sets":
                self._facts.append(set())
            else:
                self._rows.append([])
                self._row_of.append({})
                self._cols.append([None] * predicate.arity)
                self._built.append([])
                self._proj.append({})
                self._depth_marks.append(0)
        return pid

    def intern_term(self, term: Term) -> int:
        """Dense id for a ground term (constant or externally-built null)."""
        tid = self._id_of_term.get(term)
        if tid is None:
            if isinstance(term, Variable):
                raise ValueError(f"only ground terms can be interned, got {term!r}")
            if isinstance(term, Null):
                # The null may already live here as a bare recipe id —
                # e.g. this store was restored from a snapshot and the
                # caller re-interns a null of the original input (the
                # resume_from delta path).  Handing out a second id
                # would break fact dedup, so match the recipe first.
                tid = self._match_null_recipe(term)
                if tid is not None:
                    self._id_of_term[term] = tid
                    if self._term_of_id[tid] is None:
                        self._term_of_id[tid] = term
                    self._has_foreign_nulls = True
                    return tid
            tid = len(self._term_of_id)
            self._id_of_term[term] = tid
            self._term_of_id.append(term)
            self._depth_of_id.append(term.depth)
            if isinstance(term, Null):
                self._has_foreign_nulls = True
        return tid

    def _match_null_recipe(self, null: Null) -> Optional[int]:
        """The id already registered for ``null``'s structural label, if any.

        Resolves the null's binding terms through the intern table
        (recursing through nested nulls, memoising hits) and looks the
        resulting ``(rule, variable, names, ids)`` key up in the recipe
        registry.  Returns ``None`` when any binding term is unknown —
        then the null genuinely is foreign to this store.
        """
        label_ids: List[int] = []
        for _, term in null.binding:
            tid = self._id_of_term.get(term)
            if tid is None and isinstance(term, Null):
                tid = self._match_null_recipe(term)
                if tid is not None:
                    self._id_of_term[term] = tid
            if tid is None:
                return None
            label_ids.append(tid)
        names = tuple(name for name, _ in null.binding)
        return self._null_ids.get(
            (null.rule_id, null.variable, names, tuple(label_ids))
        )

    def intern_null(
        self,
        rule_id: str,
        variable: str,
        label_names: Tuple[str, ...],
        label_ids: Tuple[int, ...],
    ) -> int:
        """Id of the labelled null ``⊥^variable_{rule, binding}``.

        ``label_names``/``label_ids`` are the null's binding as parallel
        tuples, already in sorted-name order (the rule templates
        precompute the name tuple once).  No :class:`Null` object is
        built here; the key tuple *is* the identity, and the recipe is
        kept so :meth:`term_of_id` can materialise the structurally
        identical null later.  Depth follows Definition 4.3:
        ``1 + max(depth of binding terms, 0)``.
        """
        key = (rule_id, variable, label_names, label_ids)
        tid = self._null_ids.get(key)
        if tid is None:
            if self._has_foreign_nulls:
                # Slow path: the input contained nulls, so an invented
                # null may already exist under a foreign id.  Build it
                # structurally and unify through the term intern table.
                binding = tuple(
                    (n, self.term_of_id(i)) for n, i in zip(label_names, label_ids)
                )
                tid = self.intern_term(
                    Null(rule_id=rule_id, variable=variable, binding=binding)
                )
                self._null_ids[key] = tid
                self._null_recipe.setdefault(tid, key)
                return tid
            depths = self._depth_of_id
            tid = len(self._term_of_id)
            self._null_ids[key] = tid
            self._null_recipe[tid] = key
            depth = 0
            for i in label_ids:
                candidate = depths[i]
                if candidate > depth:
                    depth = candidate
            self._term_of_id.append(None)
            self._depth_of_id.append(depth + 1)
        return tid

    def intern_atom(self, atom: Atom) -> Fact:
        """Intern a ground atom as ``(pid, ids)`` without storing it."""
        return (
            self.intern_predicate(atom.predicate),
            tuple(self.intern_term(t) for t in atom.args),
        )

    # -- decoding (the API boundary) ---------------------------------------

    def predicate_of(self, pid: int) -> Predicate:
        return self._pred_of[pid]

    def pid(self, predicate: Predicate) -> Optional[int]:
        """The id of an already-interned predicate, else ``None``."""
        return self._pid_of.get(predicate)

    def term_of_id(self, tid: int) -> Term:
        """Materialise the term behind ``tid``.

        Store-invented nulls are built lazily from their recipe; the
        resulting :class:`Null` is *equal* (same intern uid) to the
        null a legacy run labels with the same rule, variable and
        binding.  The dependency chain is resolved with an explicit
        stack — a budget-stopped non-terminating run nests nulls deeper
        than Python's recursion limit.
        """
        terms = self._term_of_id
        term = terms[tid]
        if term is not None:
            return term
        recipes = self._null_recipe
        stack = [tid]
        while stack:
            current = stack[-1]
            if terms[current] is not None:
                stack.pop()
                continue
            rule_id, variable, names, ids = recipes[current]
            missing = [i for i in ids if terms[i] is None]
            if missing:
                stack.extend(missing)
                continue
            null = Null(
                rule_id=rule_id,
                variable=variable,
                binding=tuple((n, terms[i]) for n, i in zip(names, ids)),
            )
            terms[current] = null
            self._id_of_term.setdefault(null, current)
            stack.pop()
        return terms[tid]

    def decode_fact(self, pid: int, ids: Tuple[int, ...]) -> Atom:
        terms = self._term_of_id
        term_of_id = self.term_of_id
        return Atom.from_trusted(
            self._pred_of[pid],
            # Inline the decoded-null check; term_of_id only for misses.
            tuple(terms[t] if terms[t] is not None else term_of_id(t) for t in ids),
        )

    def to_instance(self) -> Instance:
        """Decode every stored fact into a fresh :class:`Instance`."""
        decode = self.decode_fact
        instance = Instance()
        for pid in range(len(self._pred_of)):
            instance.extend_unique_ground(
                decode(pid, ids) for ids in self.facts_of(pid)
            )
        return instance

    def iter_facts(self) -> Iterator[Fact]:
        for pid in range(len(self._pred_of)):
            for ids in self.facts_of(pid):
                yield (pid, ids)

    # -- storage -----------------------------------------------------------

    def add(self, pid: int, ids: Tuple[int, ...]) -> bool:
        """Store a fact; return True if it was new."""
        if self.layout == "sets":
            bucket = self._facts[pid]
            if ids in bucket:
                return False
            bucket.add(ids)
            posting = self._posting
            for position, tid in enumerate(ids):
                key = (pid, position, tid)
                entry = posting.get(key)
                if entry is None:
                    posting[key] = {ids}
                else:
                    entry.add(ids)
        else:
            rows = self._rows[pid]
            row = len(rows)
            # setdefault: one hash probe decides "duplicate?" and
            # inserts the new row id in the same motion.
            if self._row_of[pid].setdefault(ids, row) != row:
                return False
            rows.append(ids)
            # Appends in row order keep every column sorted and
            # deduplicated without hashing — and only the columns some
            # probe has actually built get maintained at all (a
            # single-atom-body rule set never builds any).
            cols = self._cols[pid]
            for position in self._built[pid]:
                tid = ids[position]
                column = cols[position]
                bucket = column.get(tid)
                if bucket is None:
                    column[tid] = [ids]
                else:
                    bucket.append(ids)
            # Depth folding is deferred: max_depth() scans the rows
            # past each predicate's depth watermark on read.
            self._size += 1
            return True
        self._size += 1
        depths = self._depth_of_id
        max_depth = self._max_depth
        for tid in ids:
            depth = depths[tid]
            if depth > max_depth:
                self._max_depth = max_depth = depth
        return True

    def add_atom(self, atom: Atom) -> Fact:
        """Intern and store a ground atom; returns its ``(pid, ids)``."""
        pid, ids = self.intern_atom(atom)
        self.add(pid, ids)
        return (pid, ids)

    def contains(self, pid: int, ids: Tuple[int, ...]) -> bool:
        if self.layout == "sets":
            return ids in self._facts[pid]
        return ids in self._row_of[pid]

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def count(self, pid: int) -> int:
        """Number of stored facts over predicate id ``pid`` (O(1))."""
        if self.layout == "sets":
            return len(self._facts[pid])
        return len(self._rows[pid])

    def max_depth(self) -> int:
        """Maximum term depth over all stored facts.

        The sets layout folds depths in eagerly on every add; the
        arrays layout defers the fold to this read, scanning only the
        rows appended since the last call (per-predicate watermarks),
        so unbudgeted chase runs pay for depth bookkeeping once instead
        of per fact.
        """
        if self.layout == "sets":
            return self._max_depth
        best = self._max_depth
        depths = self._depth_of_id
        marks = self._depth_marks
        for pid, rows in enumerate(self._rows):
            mark = marks[pid]
            if mark != len(rows):
                for ids in rows[mark:]:
                    for tid in ids:
                        depth = depths[tid]
                        if depth > best:
                            best = depth
                marks[pid] = len(rows)
        self._max_depth = best
        return best

    def null_count(self) -> int:
        """Number of labelled nulls known to this store (O(1)).

        Counts both store-invented and foreign (input) nulls; the chase
        probe diffs it across rounds to report nulls invented per round.
        """
        return len(self._null_ids)

    def index_build_profile(self) -> Dict[str, Dict[str, object]]:
        """Per-predicate lazy index construction: name -> builds/seconds.

        Covers posting-column backfills and projection-signature
        builds (the same events :attr:`index_builds` counts), with the
        wall time each cost.  Empty for the sets layout, whose posting
        sets are maintained eagerly on add.
        """
        return {
            self._pred_of[pid].name: {"builds": entry[0], "seconds": entry[1]}
            for pid, entry in self._index_profile.items()
        }

    def posting_memory(self) -> Dict[str, int]:
        """Approximate per-predicate index memory (bytes), on demand.

        Sums ``sys.getsizeof`` over the posting containers — built
        columns and their buckets plus projection sets on the arrays
        layout, fact buckets and posting sets on the sets layout.
        Container overhead only (the packed fact tuples themselves are
        shared with the row tables), which is the part the lazy index
        strategy actually controls.  Walks every built bucket, so call
        it at run end, not per round.
        """
        sizes: Dict[str, int] = {}
        getsizeof = sys.getsizeof
        if self.layout == "sets":
            per_pid: Dict[int, int] = {
                pid: getsizeof(bucket) for pid, bucket in enumerate(self._facts)
            }
            for (pid, _, _), entry in self._posting.items():
                per_pid[pid] = per_pid.get(pid, 0) + getsizeof(entry)
            for pid, total in per_pid.items():
                sizes[self._pred_of[pid].name] = total
            return sizes
        for pid, predicate in enumerate(self._pred_of):
            total = getsizeof(self._rows[pid])
            for position in self._built[pid]:
                column = self._cols[pid][position]
                total += getsizeof(column)
                total += sum(map(getsizeof, column.values()))
            for entry in self._proj[pid].values():
                total += getsizeof(entry[0])
            sizes[predicate.name] = total
        return sizes

    def fact_depth(self, ids: Tuple[int, ...]) -> int:
        """Depth of a fact: max over its terms' depths (0 if nullary)."""
        depths = self._depth_of_id
        return max((depths[t] for t in ids), default=0)

    def facts_of(self, pid: int):
        """All facts over ``pid`` as a live, do-not-mutate iterable.

        The sets layout hands out its live bucket set; the arrays
        layout its live row table (a list in insertion order).  Both
        alias engine internals for speed — treat them as frozen.
        """
        if self.layout == "sets":
            return self._facts[pid]
        return self._rows[pid]

    def row_marks(self) -> List[int]:
        """Per-predicate row counts (arrays layout): the delta watermark.

        The columnar driver snapshots this before applying a round and
        reads the round's delta back with :meth:`rows_since` — no
        per-fact bookkeeping, because new facts simply occupy the row
        range past the mark.
        """
        if self.layout != "arrays":
            raise TypeError("row_marks() requires the arrays layout")
        return [len(rows) for rows in self._rows]

    def rows_since(self, pid: int, mark: int) -> List[Tuple[int, ...]]:
        """The facts over ``pid`` appended after ``mark`` (arrays layout)."""
        return self._rows[pid][mark:]

    def _column(self, pid: int, position: int) -> Dict[int, List[Tuple[int, ...]]]:
        """The posting column index for (pid, position), built on first use.

        Backfilled from the row table in insertion order (so buckets
        come out ascending by row id) and maintained by ``add`` from
        then on.
        """
        column = self._cols[pid][position]
        if column is None:
            build_start = perf_counter()
            self.index_builds += 1
            column = {}
            for ids in self._rows[pid]:
                tid = ids[position]
                bucket = column.get(tid)
                if bucket is None:
                    column[tid] = [ids]
                else:
                    bucket.append(ids)
            self._cols[pid][position] = column
            self._built[pid].append(position)
            entry = self._index_profile.get(pid)
            if entry is None:
                self._index_profile[pid] = [1, perf_counter() - build_start]
            else:
                entry[0] += 1
                entry[1] += perf_counter() - build_start
        return column

    def posting(self, pid: int, position: int, tid: int):
        """Read-only posting list for ``(pid, position, tid)``.

        This is the safe public accessor (the join hot path goes
        through :meth:`candidates` instead).  The arrays layout returns
        an immutable tuple of the column's packed facts in row order;
        the sets layout returns a ``frozenset`` copy under
        ``__debug__`` (catching accidental mutation in tests) and the
        live set only under ``-O``.
        """
        if self.layout == "sets":
            entry = self._posting.get((pid, position, tid))
            if not entry:
                return _EMPTY_FACTS
            if __debug__:
                return frozenset(entry)
            return entry  # pragma: no cover - exercised only under -O
        bucket = self._column(pid, position).get(tid)
        if not bucket:
            return ()
        return tuple(bucket)

    def posting_rows(self, pid: int, position: int, tid: int) -> memoryview:
        """One posting column as a read-only ``memoryview`` of packed
        row ids (arrays layout only) — ascending by construction.

        This is the zero-copy-consumable face of the columnar index
        (the ids are packed into a fresh ``array('q')``; the view into
        it is read-only), used by tooling and tests that want the sorted
        ids rather than decoded facts.
        """
        if self.layout != "arrays":
            raise TypeError("posting_rows() requires the arrays layout")
        bucket = self._column(pid, position).get(tid)
        row_of = self._row_of[pid]
        ids = array("q", (row_of[ids_] for ids_ in bucket)) if bucket else array("q")
        return memoryview(ids).toreadonly()

    def has_projection(
        self, pid: int, signature: Tuple[int, ...], value: Tuple[int, ...]
    ) -> bool:
        """:meth:`has_candidate` with the probe pre-split by the caller.

        ``signature`` is the tuple of bound positions and ``value`` the
        term ids at them — the form compiled head plans can build with
        one itemgetter.  On the arrays layout a multi-position probe is
        one lookup in the projection index; the sets layout falls back
        to the posting-set intersection.
        """
        if not signature:
            return self.count(pid) > 0
        if self.layout == "sets":
            if len(signature) == 1:
                return bool(self._posting.get((pid, signature[0], value[0])))
            return bool(self.candidates(pid, tuple(zip(signature, value))))
        if len(signature) == 1:
            return value[0] in self._column(pid, signature[0])
        rows = self._rows[pid]
        entry = self._proj[pid].get(signature)
        if entry is None:
            build_start = perf_counter()
            self.index_builds += 1
            getter = itemgetter(*signature)
            projections = set(map(getter, rows))
            self._proj[pid][signature] = [projections, len(rows), getter]
            profile = self._index_profile.get(pid)
            if profile is None:
                self._index_profile[pid] = [1, perf_counter() - build_start]
            else:
                profile[0] += 1
                profile[1] += perf_counter() - build_start
        else:
            projections, watermark, getter = entry
            if watermark != len(rows):
                projections.update(map(getter, rows[watermark:]))
                entry[1] = len(rows)
        return value in projections

    def has_candidate(self, pid: int, bound: Sequence[Tuple[int, int]]) -> bool:
        """True iff some stored fact over ``pid`` matches ``bound``.

        The existence-only twin of :meth:`candidates` with the probe as
        ``(position, tid)`` pairs; :meth:`has_projection` is the same
        verdict for callers that pre-split signature and value.
        """
        if self.layout == "sets":
            if not bound:
                return bool(self._facts[pid])
            if len(bound) == 1:
                position, tid = bound[0]
                return bool(self._posting.get((pid, position, tid)))
            return bool(self.candidates(pid, bound))
        if not bound:
            return bool(self._rows[pid])
        if len(bound) == 1:
            position, tid = bound[0]
            return tid in self._column(pid, position)
        if len(bound) == 2:
            (position_a, tid_a), (position_b, tid_b) = bound
            return self.has_projection(pid, (position_a, position_b), (tid_a, tid_b))
        return self.has_projection(
            pid,
            tuple(position for position, _ in bound),
            tuple(tid for _, tid in bound),
        )

    def candidates(self, pid: int, bound: Sequence[Tuple[int, int]]):
        """Facts over ``pid`` matching the bound ``(position, tid)`` pairs.

        Returns an iterable of packed fact tuples; it may alias live
        index state and must not be kept across mutations.  The sets
        layout intersects posting sets smallest first; the arrays
        layout walks the *smallest* posting column and filters it by
        direct position compares, yielding facts in insertion (row)
        order.  A provably empty probe returns a falsy empty container
        either way.
        """
        if self.layout == "sets":
            if not bound:
                return self._facts[pid]
            if len(bound) == 1:
                position, tid = bound[0]
                return self._posting.get((pid, position, tid), _EMPTY_FACTS)
            posting = self._posting
            smallest: Optional[Set[Tuple[int, ...]]] = None
            rest: List[Set[Tuple[int, ...]]] = []
            for position, tid in bound:
                entry = posting.get((pid, position, tid))
                if not entry:
                    return _EMPTY_FACTS
                if smallest is None or len(entry) < len(smallest):
                    if smallest is not None:
                        rest.append(smallest)
                    smallest = entry
                else:
                    rest.append(entry)
            assert smallest is not None
            return smallest.intersection(*rest)
        if not bound:
            return self._rows[pid]
        if len(bound) == 1:
            position, tid = bound[0]
            return self._column(pid, position).get(tid, ())
        # Multi-position probe: walk the smallest column and keep the
        # facts whose remaining bound positions match.  A direct
        # ``ids[position] == tid`` compare per fact beats any hash
        # index here — same O(smallest column) as a set intersection,
        # but with int compares instead of tuple hashes and zero index
        # maintenance on the add path.
        buckets: List[Tuple[int, int, List[Tuple[int, ...]]]] = []
        for position, tid in bound:
            bucket = self._column(pid, position).get(tid)
            if not bucket:
                return ()
            buckets.append((position, tid, bucket))
        best = 0
        for index in range(1, len(buckets)):
            if len(buckets[index][2]) < len(buckets[best][2]):
                best = index
        smallest = buckets[best][2]
        if len(buckets) == 2:
            position, tid, _ = buckets[1 - best]
            return [ids for ids in smallest if ids[position] == tid]
        rest = [
            (position, tid)
            for index, (position, tid, _) in enumerate(buckets)
            if index != best
        ]
        return [
            ids
            for ids in smallest
            if all(ids[position] == tid for position, tid in rest)
        ]

    # -- snapshots ---------------------------------------------------------

    def snapshot(
        self, complete: Optional[bool] = None, rounds: Optional[int] = None
    ) -> bytes:
        """Encode the whole store as one plain-bytes blob.

        ``complete`` stamps the header with what the caller knows about
        the store's provenance: ``True`` for a *terminated* chase
        result (safe to resume from), ``False`` for a budget-stopped
        prefix (resuming would silently drop the still-pending
        triggers), ``None``/absent when the store is not a chase result
        at all (e.g. an encoded database shipped to a worker).

        ``rounds`` optionally stamps how many chase rounds produced the
        store (cumulative across resumes); a run resumed from the
        snapshot reports it as its base-run offset.  The key is only
        written when given, so snapshots of plain databases keep their
        exact pre-existing byte layout.

        The wire format is a JSON header (interner tables: predicates,
        constants, null recipes) followed by packed binary columns —
        the per-id depth column and, per predicate, the fact rows as
        ``array('q').tobytes()``.  :meth:`restore` rebuilds an
        equivalent store (either layout) without parsing any fact text
        or re-deriving any null label; decoding the restored store
        yields atoms equal to the original's, and canonical
        fingerprints are preserved.

        Foreign nulls (interned from an input instance rather than
        invented here) are recipe-encoded at snapshot time: their
        binding terms are interned on the fly, so the snapshot may
        intern a few extra terms into this store as a side effect —
        harmless, since interning never changes the stored facts.
        """
        terms: List[object] = []
        index = 0
        while index < len(self._term_of_id):
            recipe = self._null_recipe.get(index)
            if recipe is not None:
                rule_id, variable, names, ids = recipe
                terms.append([rule_id, variable, list(names), list(ids)])
            else:
                term = self._term_of_id[index]
                assert term is not None, "id without a term or a recipe"
                if isinstance(term, Constant):
                    terms.append(term.name)
                else:
                    # A foreign null: synthesise the recipe its inventor
                    # would have used.  intern_term may append binding
                    # terms (the while loop picks them up).
                    ids = tuple(self.intern_term(t) for _, t in term.binding)
                    names = tuple(n for n, _ in term.binding)
                    key = (term.rule_id, term.variable, names, ids)
                    self._null_recipe[index] = key
                    self._null_ids.setdefault(key, index)
                    terms.append([term.rule_id, term.variable, list(names), list(ids)])
            index += 1
        header = {
            "version": 1,
            "byteorder": sys.byteorder,
            "itemsize": array("q").itemsize,
            "predicates": [[p.name, p.arity] for p in self._pred_of],
            "terms": terms,
            "facts": [self.count(pid) for pid in range(len(self._pred_of))],
            "size": self._size,
            # max_depth() first: the arrays layout folds depths lazily.
            "max_depth": self.max_depth(),
            "foreign": self._has_foreign_nulls,
            "complete": complete,
        }
        if rounds is not None:
            header["rounds"] = rounds
        header_bytes = json.dumps(header, ensure_ascii=False).encode("utf-8")
        chunks = [
            SNAPSHOT_MAGIC,
            len(header_bytes).to_bytes(8, "little"),
            header_bytes,
            array("q", self._depth_of_id).tobytes(),
        ]
        for pid in range(len(self._pred_of)):
            flat = array("q")
            for ids in self.facts_of(pid):
                flat.extend(ids)
            chunks.append(flat.tobytes())
        return b"".join(chunks)

    @classmethod
    def restore(cls, data: bytes, layout: Optional[str] = None) -> "FactStore":
        """Rebuild a store from :meth:`snapshot` bytes.

        ``layout`` selects the storage layout of the restored store
        (default: the process default) — snapshots are layout-agnostic.
        """
        header, offset = inspect_snapshot(data, _with_offset=True)
        store = cls(layout=layout)
        itemsize = int(header["itemsize"])
        arities = [int(arity) for _, arity in header["predicates"]]
        expected = (
            offset
            + len(header["terms"]) * itemsize
            + sum(
                int(count) * arity * itemsize
                for count, arity in zip(header["facts"], arities)
            )
        )
        if len(data) != expected:
            # A crash mid-write (or a clipped base64 cache line) must
            # fail loudly, not restore a silently incomplete store.
            raise ValueError(
                f"truncated or padded snapshot: {len(data)} bytes, "
                f"header promises {expected}"
            )
        for name, arity in header["predicates"]:
            store.intern_predicate(Predicate(str(name), int(arity)))
        id_of_term = store._id_of_term
        term_of_id = store._term_of_id
        null_ids = store._null_ids
        null_recipe = store._null_recipe
        for entry in header["terms"]:
            tid = len(term_of_id)
            if isinstance(entry, str):
                constant = Constant(entry)
                id_of_term[constant] = tid
                term_of_id.append(constant)
            else:
                rule_id, variable, names, ids = entry
                key = (str(rule_id), str(variable), tuple(names), tuple(ids))
                null_ids[key] = tid
                null_recipe[tid] = key
                term_of_id.append(None)
        term_count = len(term_of_id)
        depths = array("q")
        depths.frombytes(data[offset : offset + term_count * itemsize])
        offset += term_count * itemsize
        if header["byteorder"] != sys.byteorder:  # pragma: no cover - cross-endian
            depths.byteswap()
        store._depth_of_id = list(depths)
        for pid, fact_count in enumerate(header["facts"]):
            arity = store._pred_of[pid].arity
            length = fact_count * arity * itemsize
            flat = array("q")
            flat.frombytes(data[offset : offset + length])
            offset += length
            if header["byteorder"] != sys.byteorder:  # pragma: no cover
                flat.byteswap()
            store._load_facts(pid, arity, flat, fact_count)
        store._size = int(header["size"])
        store._max_depth = int(header["max_depth"])
        store._has_foreign_nulls = bool(header["foreign"])
        rounds = header.get("rounds")
        store.restored_rounds = int(rounds) if rounds is not None else None
        return store

    def _load_facts(self, pid: int, arity: int, flat: array, fact_count: int) -> None:
        """Bulk-load trusted (pre-deduplicated) facts from a flat column."""
        if arity == 0:
            # A nullary predicate holds at most the empty fact.
            facts = [()] * fact_count
        else:
            facts = [
                tuple(flat[base : base + arity])
                for base in range(0, fact_count * arity, arity)
            ]
        if self.layout == "sets":
            bucket = self._facts[pid]
            bucket.update(facts)
            posting = self._posting
            for ids in facts:
                for position, tid in enumerate(ids):
                    key = (pid, position, tid)
                    entry = posting.get(key)
                    if entry is None:
                        posting[key] = {ids}
                    else:
                        entry.add(ids)
        else:
            rows = self._rows[pid]
            row_of = self._row_of[pid]
            for ids in facts:
                row_of[ids] = len(rows)
                rows.append(ids)
            # Posting columns stay unbuilt (they backfill lazily on
            # first probe), and the caller (restore) sets _max_depth
            # from the header: these rows are already folded.
            self._depth_marks[pid] = len(rows)


def inspect_snapshot(data: bytes, _with_offset: bool = False):
    """Decode just the JSON header of a snapshot (cheap: no fact load).

    Returns the header dict — predicates, interner tables, fact counts,
    size, max depth — which is what ``python -m repro snapshot inspect``
    prints.
    """
    if not data.startswith(SNAPSHOT_MAGIC):
        raise ValueError("not a fact-store snapshot (bad magic)")
    start = len(SNAPSHOT_MAGIC)
    header_length = int.from_bytes(data[start : start + 8], "little")
    header_start = start + 8
    header = json.loads(data[header_start : header_start + header_length])
    if header.get("version") != 1:
        raise ValueError(f"unsupported snapshot version {header.get('version')!r}")
    if _with_offset:
        return header, header_start + header_length
    return header
