"""Interned fact store: the chase engine's integer data plane.

The legacy hot path pays Python object costs per probe: every join
step hashes a ``(Predicate, args)`` tuple, allocates :class:`Atom`
objects for candidate results, and intersects ``Set[Atom]`` buckets.
:class:`FactStore` dictionary-encodes the data plane instead:

* predicates and ground terms are interned to dense integer ids;
* each predicate's facts are packed tuples of term ids, kept in one
  set per predicate (containment is an int-tuple hash probe);
* a ``(predicate id, position, term id) -> facts`` posting index
  replaces the per-position atom buckets, so joins intersect sets of
  small-int tuples instead of boxed terms;
* labelled nulls are invented as bare ids with a *decode recipe*
  (rule id, variable, label names, label term ids) and only
  materialised as :class:`~repro.model.terms.Null` objects at API
  boundaries — :meth:`term_of_id` builds the exact structural null the
  legacy engine would have built, so decoded instances compare equal
  atom for atom and fingerprint identically.

The store is add-only (the chase never retracts facts), which is what
makes the incremental ``size``/``max_depth`` counters exact.  Because
every key in the hot dictionaries is an int or a tuple of ints, the
iteration order of its sets is independent of string-hash
randomisation, unlike ``Set[Atom]`` buckets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Instance
from repro.model.terms import Constant, Null, Term, Variable

#: A fact as (predicate id, packed term-id tuple).
Fact = Tuple[int, Tuple[int, ...]]

#: Shared empty posting list for index misses; never mutated.
_EMPTY_FACTS: Set[Tuple[int, ...]] = frozenset()  # type: ignore[assignment]


class FactStore:
    """Interned predicates, terms and facts with positional posting lists."""

    __slots__ = (
        "_pid_of",
        "_pred_of",
        "_facts",
        "_id_of_term",
        "_term_of_id",
        "_depth_of_id",
        "_null_ids",
        "_null_recipe",
        "_posting",
        "_size",
        "_max_depth",
        "_has_foreign_nulls",
    )

    def __init__(self) -> None:
        self._pid_of: Dict[Predicate, int] = {}
        self._pred_of: List[Predicate] = []
        self._facts: List[Set[Tuple[int, ...]]] = []
        self._id_of_term: Dict[Term, int] = {}
        # Decoded term per id; ``None`` marks a store-invented null that
        # has not been materialised yet (see :meth:`term_of_id`).
        self._term_of_id: List[Optional[Term]] = []
        self._depth_of_id: List[int] = []
        # (rule_id, variable, label names, label ids) -> null term id.
        self._null_ids: Dict[Tuple[str, str, Tuple[str, ...], Tuple[int, ...]], int] = {}
        self._null_recipe: Dict[int, Tuple[str, str, Tuple[str, ...], Tuple[int, ...]]] = {}
        self._posting: Dict[Tuple[int, int, int], Set[Tuple[int, ...]]] = {}
        self._size = 0
        self._max_depth = 0
        # True once a null built *outside* the store has been interned
        # (e.g. the input instance is itself a chase result).  Invented
        # nulls must then unify structurally with the foreign ones, or
        # one null could end up with two ids and break fact dedup.
        self._has_foreign_nulls = False

    # -- interning ---------------------------------------------------------

    def intern_predicate(self, predicate: Predicate) -> int:
        """Dense id for ``predicate`` (created on first sight)."""
        pid = self._pid_of.get(predicate)
        if pid is None:
            pid = len(self._pred_of)
            self._pid_of[predicate] = pid
            self._pred_of.append(predicate)
            self._facts.append(set())
        return pid

    def intern_term(self, term: Term) -> int:
        """Dense id for a ground term (constant or externally-built null)."""
        tid = self._id_of_term.get(term)
        if tid is None:
            if isinstance(term, Variable):
                raise ValueError(f"only ground terms can be interned, got {term!r}")
            tid = len(self._term_of_id)
            self._id_of_term[term] = tid
            self._term_of_id.append(term)
            self._depth_of_id.append(term.depth)
            if isinstance(term, Null):
                self._has_foreign_nulls = True
        return tid

    def intern_null(
        self,
        rule_id: str,
        variable: str,
        label_names: Tuple[str, ...],
        label_ids: Tuple[int, ...],
    ) -> int:
        """Id of the labelled null ``⊥^variable_{rule, binding}``.

        ``label_names``/``label_ids`` are the null's binding as parallel
        tuples, already in sorted-name order (the rule templates
        precompute the name tuple once).  No :class:`Null` object is
        built here; the key tuple *is* the identity, and the recipe is
        kept so :meth:`term_of_id` can materialise the structurally
        identical null later.  Depth follows Definition 4.3:
        ``1 + max(depth of binding terms, 0)``.
        """
        key = (rule_id, variable, label_names, label_ids)
        tid = self._null_ids.get(key)
        if tid is None:
            if self._has_foreign_nulls:
                # Slow path: the input contained nulls, so an invented
                # null may already exist under a foreign id.  Build it
                # structurally and unify through the term intern table.
                binding = tuple(
                    (n, self.term_of_id(i)) for n, i in zip(label_names, label_ids)
                )
                tid = self.intern_term(
                    Null(rule_id=rule_id, variable=variable, binding=binding)
                )
                self._null_ids[key] = tid
                return tid
            depths = self._depth_of_id
            tid = len(self._term_of_id)
            self._null_ids[key] = tid
            self._null_recipe[tid] = key
            depth = 1 + max((depths[i] for i in label_ids), default=0)
            self._term_of_id.append(None)
            self._depth_of_id.append(depth)
        return tid

    def intern_atom(self, atom: Atom) -> Fact:
        """Intern a ground atom as ``(pid, ids)`` without storing it."""
        return (
            self.intern_predicate(atom.predicate),
            tuple(self.intern_term(t) for t in atom.args),
        )

    # -- decoding (the API boundary) ---------------------------------------

    def predicate_of(self, pid: int) -> Predicate:
        return self._pred_of[pid]

    def pid(self, predicate: Predicate) -> Optional[int]:
        """The id of an already-interned predicate, else ``None``."""
        return self._pid_of.get(predicate)

    def term_of_id(self, tid: int) -> Term:
        """Materialise the term behind ``tid``.

        Store-invented nulls are built lazily from their recipe; the
        resulting :class:`Null` is *equal* (same intern uid) to the
        null a legacy run labels with the same rule, variable and
        binding.  The dependency chain is resolved with an explicit
        stack — a budget-stopped non-terminating run nests nulls deeper
        than Python's recursion limit.
        """
        terms = self._term_of_id
        term = terms[tid]
        if term is not None:
            return term
        recipes = self._null_recipe
        stack = [tid]
        while stack:
            current = stack[-1]
            if terms[current] is not None:
                stack.pop()
                continue
            rule_id, variable, names, ids = recipes[current]
            missing = [i for i in ids if terms[i] is None]
            if missing:
                stack.extend(missing)
                continue
            null = Null(
                rule_id=rule_id,
                variable=variable,
                binding=tuple((n, terms[i]) for n, i in zip(names, ids)),
            )
            terms[current] = null
            self._id_of_term.setdefault(null, current)
            stack.pop()
        return terms[tid]

    def decode_fact(self, pid: int, ids: Tuple[int, ...]) -> Atom:
        terms = self._term_of_id
        term_of_id = self.term_of_id
        return Atom.from_trusted(
            self._pred_of[pid],
            # Inline the decoded-null check; term_of_id only for misses.
            tuple(terms[t] if terms[t] is not None else term_of_id(t) for t in ids),
        )

    def to_instance(self) -> Instance:
        """Decode every stored fact into a fresh :class:`Instance`."""
        decode = self.decode_fact
        instance = Instance()
        for pid, bucket in enumerate(self._facts):
            instance.extend_unique_ground(decode(pid, ids) for ids in bucket)
        return instance

    def iter_facts(self) -> Iterator[Fact]:
        for pid, bucket in enumerate(self._facts):
            for ids in bucket:
                yield (pid, ids)

    # -- storage -----------------------------------------------------------

    def add(self, pid: int, ids: Tuple[int, ...]) -> bool:
        """Store a fact; return True if it was new."""
        bucket = self._facts[pid]
        if ids in bucket:
            return False
        bucket.add(ids)
        posting = self._posting
        for position, tid in enumerate(ids):
            key = (pid, position, tid)
            entry = posting.get(key)
            if entry is None:
                posting[key] = {ids}
            else:
                entry.add(ids)
        self._size += 1
        depths = self._depth_of_id
        max_depth = self._max_depth
        for tid in ids:
            depth = depths[tid]
            if depth > max_depth:
                self._max_depth = max_depth = depth
        return True

    def add_atom(self, atom: Atom) -> Fact:
        """Intern and store a ground atom; returns its ``(pid, ids)``."""
        pid, ids = self.intern_atom(atom)
        self.add(pid, ids)
        return (pid, ids)

    def contains(self, pid: int, ids: Tuple[int, ...]) -> bool:
        return ids in self._facts[pid]

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def count(self, pid: int) -> int:
        """Number of stored facts over predicate id ``pid`` (O(1))."""
        return len(self._facts[pid])

    def max_depth(self) -> int:
        """Maximum term depth over all stored facts (incremental)."""
        return self._max_depth

    def fact_depth(self, ids: Tuple[int, ...]) -> int:
        """Depth of a fact: max over its terms' depths (0 if nullary)."""
        depths = self._depth_of_id
        return max((depths[t] for t in ids), default=0)

    def facts_of(self, pid: int) -> Set[Tuple[int, ...]]:
        """Live view of all facts over ``pid``; do not mutate."""
        return self._facts[pid]

    def posting(self, pid: int, position: int, tid: int) -> Set[Tuple[int, ...]]:
        """Live posting list for (pid, position, tid); do not mutate."""
        return self._posting.get((pid, position, tid), _EMPTY_FACTS)

    def candidates(
        self, pid: int, bound: Sequence[Tuple[int, int]]
    ) -> Set[Tuple[int, ...]]:
        """Facts over ``pid`` matching the bound ``(position, tid)`` pairs.

        Mirrors :meth:`Instance.candidates_view`: the result may alias a
        live index set and must not be kept across mutations.  Multiple
        bound positions intersect smallest-first without materialising
        an intermediate bucket list, and any empty posting list
        short-circuits the whole probe.
        """
        if not bound:
            return self._facts[pid]
        if len(bound) == 1:
            position, tid = bound[0]
            return self._posting.get((pid, position, tid), _EMPTY_FACTS)
        posting = self._posting
        smallest: Optional[Set[Tuple[int, ...]]] = None
        rest: List[Set[Tuple[int, ...]]] = []
        for position, tid in bound:
            entry = posting.get((pid, position, tid))
            if not entry:
                return _EMPTY_FACTS
            if smallest is None or len(entry) < len(smallest):
                if smallest is not None:
                    rest.append(smallest)
                smallest = entry
            else:
                rest.append(entry)
        assert smallest is not None
        return smallest.intersection(*rest)
