"""Text serialisation of atoms, databases and programs.

The output of :func:`tgd_to_text` and :func:`database_to_text` round
trips through :mod:`repro.model.parser`, which the test suite checks.
Nulls are rendered with a ``_:`` prefix and are only meant for human
inspection of chase results, not for re-parsing.
"""

from __future__ import annotations

from typing import Iterable

from repro.model.atoms import Atom
from repro.model.instance import Database, Instance
from repro.model.terms import Constant, Null, Variable
from repro.model.tgd import TGD, TGDSet


def term_to_text(term) -> str:
    if isinstance(term, Constant):
        return term.name
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Null):
        return str(term)
    raise TypeError(f"unsupported term {term!r}")


def atom_to_text(atom: Atom) -> str:
    args = ", ".join(term_to_text(t) for t in atom.args)
    return f"{atom.predicate.name}({args})"


def tgd_to_text(tgd: TGD) -> str:
    body = ", ".join(atom_to_text(a) for a in tgd.body)
    head = ", ".join(atom_to_text(a) for a in tgd.head)
    existentials = sorted(v.name for v in tgd.existential_variables())
    prefix = f"exists {', '.join(existentials)} . " if existentials else ""
    return f"{body} -> {prefix}{head}"


def program_to_text(program: TGDSet) -> str:
    return "\n".join(tgd_to_text(t) for t in program)


def database_to_text(database: Database) -> str:
    return "\n".join(sorted(f"{atom_to_text(a)}." for a in database))


def instance_to_text(instance: Instance) -> str:
    """Human-readable dump of an instance (chase result)."""
    return "\n".join(sorted(atom_to_text(a) for a in instance))
