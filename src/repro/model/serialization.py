"""Text serialisation of atoms, databases and programs.

The output of :func:`tgd_to_text` and :func:`database_to_text` round
trips through :mod:`repro.model.parser`, which the test suite checks.
Nulls are rendered with a ``_:`` prefix and are only meant for human
inspection of chase results, not for re-parsing.

The ``canonical_*`` functions produce *content-canonical* forms: two
programs that differ only in rule order, rule identifiers, or a
consistent variable renaming serialise identically, and two instances
that differ only in fact order or a labelled-null renaming serialise
identically.  The batch runtime fingerprints jobs by hashing these
forms (:mod:`repro.runtime.jobs`), so the cache recognises isomorphic
inputs no matter how they were constructed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.model.atoms import Atom
from repro.model.instance import Database, Instance
from repro.model.terms import Constant, Null, Variable
from repro.model.tgd import TGD, TGDSet


def term_to_text(term) -> str:
    if isinstance(term, Constant):
        return term.name
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Null):
        return str(term)
    raise TypeError(f"unsupported term {term!r}")


def atom_to_text(atom: Atom) -> str:
    args = ", ".join(term_to_text(t) for t in atom.args)
    return f"{atom.predicate.name}({args})"


def tgd_to_text(tgd: TGD) -> str:
    body = ", ".join(atom_to_text(a) for a in tgd.body)
    head = ", ".join(atom_to_text(a) for a in tgd.head)
    existentials = sorted(v.name for v in tgd.existential_variables())
    prefix = f"exists {', '.join(existentials)} . " if existentials else ""
    return f"{body} -> {prefix}{head}"


def program_to_text(program: TGDSet) -> str:
    return "\n".join(tgd_to_text(t) for t in program)


def database_to_text(database: Database) -> str:
    return "\n".join(database_fact_lines(database))


def database_fact_lines(database: Database) -> Tuple[str, ...]:
    """The database's facts as sorted ``R(a, b).`` lines.

    The set-comparison currency of incremental re-chase: a cache entry
    stores its base database as these lines, and the executor
    recognises "previous job + delta" by checking that the base lines
    are a subset of the new job's (the delta being the complement).
    Databases are ground, so the sorted line tuple is canonical without
    any null relabelling.
    """
    return tuple(sorted(f"{atom_to_text(a)}." for a in database))


def instance_to_text(instance: Instance) -> str:
    """Human-readable dump of an instance (chase result)."""
    return "\n".join(sorted(atom_to_text(a) for a in instance))


# --------------------------------------------------------------------------
# Canonical forms
# --------------------------------------------------------------------------
#
# Renaming-invariant serialisation reduces to canonically labelling the
# renameable terms (variables of a TGD, labelled nulls of an instance).
# The algorithm is the classic two-phase canonical labelling used by
# graph and RDF canonicalisation: (1) partition-refine the terms by
# their occurrence structure until the partition is stable, then
# (2) assign indices greedily, always extending with the candidate
# whose assignment yields the lexicographically smallest rendering.
# Both phases only look at structure (predicates, argument positions,
# colours of co-occurring terms), never at the original names, so a
# consistent renaming cannot change the outcome.


def _canonical_labels(
    tagged_atoms: Sequence[Tuple[str, Atom]], renameable: Set
) -> Dict[object, int]:
    """Assign each renameable term a canonical index, invariant under
    consistent renaming of those terms and under atom reordering."""
    if not renameable:
        return {}
    colors: Dict[object, int] = {t: 0 for t in renameable}
    occurrences: Dict[object, List[Tuple[str, Atom, int]]] = {t: [] for t in renameable}
    for tag, a in tagged_atoms:
        for i, arg in enumerate(a.args):
            if arg in occurrences:
                occurrences[arg].append((tag, a, i))

    def token(term) -> Tuple[str, object]:
        if term in colors:
            return ("r", colors[term])
        return ("f", term_to_text(term))

    distinct = 1
    for _ in range(len(colors)):
        signatures = {
            t: (
                colors[t],
                tuple(
                    sorted(
                        (tag, a.predicate.name, a.predicate.arity, i,
                         tuple(token(arg) for arg in a.args))
                        for tag, a, i in occurrences[t]
                    )
                ),
            )
            for t in colors
        }
        ranked = {sig: rank for rank, sig in enumerate(sorted(set(signatures.values())))}
        colors = {t: ranked[signatures[t]] for t in colors}
        if len(ranked) == distinct:
            break
        distinct = len(ranked)

    assigned: Dict[object, int] = {}

    def render_key(candidate) -> Tuple:
        trial = dict(assigned)
        trial[candidate] = len(assigned)
        lines = []
        for tag, a in tagged_atoms:
            parts = []
            for arg in a.args:
                if arg in trial:
                    parts.append(("a", trial[arg]))
                elif arg in colors:
                    parts.append(("u", colors[arg]))
                else:
                    parts.append(("f", term_to_text(arg)))
            lines.append((tag, a.predicate.name, a.predicate.arity, tuple(parts)))
        return tuple(sorted(lines))

    unassigned = set(colors)
    while unassigned:
        lowest = min(colors[t] for t in unassigned)
        group = [t for t in unassigned if colors[t] == lowest]
        best = group[0] if len(group) == 1 else min(group, key=render_key)
        assigned[best] = len(assigned)
        unassigned.discard(best)
    return assigned


def _render_canonical_atom(a: Atom, labels: Dict[object, int], prefix: str) -> str:
    parts = []
    for arg in a.args:
        if arg in labels:
            parts.append(f"{prefix}{labels[arg]}")
        else:
            parts.append(term_to_text(arg))
    return f"{a.predicate.name}({', '.join(parts)})"


def canonical_tgd_text(tgd: TGD) -> str:
    """A renaming- and atom-order-invariant rendering of a TGD.

    The rule identifier is deliberately excluded: two TGDs with the
    same logical content fingerprint equal.  The output is for hashing
    and display, not for re-parsing.
    """
    tagged = [("B", a) for a in tgd.body] + [("H", a) for a in tgd.head]
    labels = _canonical_labels(tagged, tgd.body_variables() | tgd.head_variables())
    body = sorted(_render_canonical_atom(a, labels, "v") for a in tgd.body)
    head = sorted(_render_canonical_atom(a, labels, "v") for a in tgd.head)
    return f"{', '.join(body)} -> {', '.join(head)}"


def canonical_program_text(program: TGDSet) -> str:
    """Canonical form of a program: sorted canonical rules, one per line.

    Invariant under rule reordering, rule-identifier changes, and
    per-rule variable renamings.
    """
    return "\n".join(sorted(canonical_tgd_text(t) for t in program))


def canonical_instance_text(instance: Instance) -> str:
    """Canonical form of an instance: sorted atoms, nulls renumbered.

    Invariant under fact reordering and any consistent relabelling of
    the instance's labelled nulls; for a :class:`Database` (no nulls)
    this is simply the sorted fact list.
    """
    atoms = list(instance)
    nulls: Set[Null] = set()
    for a in atoms:
        nulls |= a.nulls()
    labels = _canonical_labels([("I", a) for a in atoms], nulls)
    return "\n".join(sorted(_render_canonical_atom(a, labels, "_:n") for a in atoms))


def canonical_database_text(database: Database) -> str:
    """Canonical form of a database (sorted facts; see
    :func:`canonical_instance_text`)."""
    return canonical_instance_text(database)


# --------------------------------------------------------------------------
# Fire-invariant comparison keys
# --------------------------------------------------------------------------


def _fire_stripped_term(term) -> Tuple:
    if isinstance(term, Null):
        return (
            "n",
            term.rule_id,
            term.variable,
            tuple(
                (name, _fire_stripped_term(value))
                for name, value in term.binding
                if name != "__fire__"
            ),
        )
    return ("c", term.name)


def fire_invariant_instance_key(instance: Instance) -> frozenset:
    """A comparison key invariant under restricted-chase fire numbering.

    The restricted chase mixes a per-application counter into its null
    labels (``__fire__``), so two runs that fire the same triggers in a
    different order produce equal instances up to that numbering.  This
    key renders each null by rule, variable and its binding with the
    fire component stripped; because the engine fires each (rule,
    frontier binding) at most once, the stripped label still identifies
    the null uniquely within one run and the key is a faithful
    set-of-atoms comparison.  For null-free or semi-oblivious/oblivious
    instances it degrades to plain structural comparison.
    """
    return frozenset(
        (
            a.predicate.name,
            a.predicate.arity,
            tuple(_fire_stripped_term(t) for t in a.args),
        )
        for a in instance
    )
