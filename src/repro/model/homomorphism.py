"""Substitutions and homomorphism search.

A homomorphism from a set of atoms ``A`` to a set of atoms ``B`` is a
substitution over the terms of ``A`` that is the identity on constants
and maps every atom of ``A`` to an atom of ``B``.  The chase engine and
the restricted-chase activeness test both reduce to enumerating the
homomorphisms from a rule body (a small conjunction of atoms over
variables) into a large instance.

Two implementations live here:

* :class:`BodyPlan` — a *compiled* backtracking join.  The atom order,
  the per-atom bound-position templates and the variable slots are
  computed once per body; evaluation binds and unbinds terms in a
  mutable slot array instead of copying a binding dict per candidate.
  :func:`find_homomorphisms`, :func:`find_homomorphisms_with_forced_atom`
  and :func:`extend_homomorphism` run on cached plans.
* :func:`find_homomorphisms_reference` — the original dict-copying
  backtracking join, kept as the executable specification.  The test
  suite checks plan-based enumeration against it on randomized
  programs, and the benchmark harness uses it as the "before" engine.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Instance
from repro.model.terms import Constant, Term, Variable

Substitution = Dict[Variable, Term]


def apply_substitution(atom: Atom, substitution: Substitution) -> Atom:
    """Apply a variable substitution to an atom."""
    new_args = tuple(
        substitution.get(arg, arg) if isinstance(arg, Variable) else arg
        for arg in atom.args
    )
    return Atom(atom.predicate, new_args)


def is_homomorphism(
    atoms: Sequence[Atom], target: Instance, substitution: Substitution
) -> bool:
    """Check that ``substitution`` maps every atom of ``atoms`` into ``target``."""
    for a in atoms:
        image = apply_substitution(a, substitution)
        if not image.is_ground or image not in target:
            return False
    return True


def _match_atom(
    pattern: Atom, candidate: Atom, binding: Substitution
) -> Optional[Substitution]:
    """Try to extend ``binding`` so that ``pattern`` maps onto ``candidate``."""
    if pattern.predicate != candidate.predicate:
        return None
    extended = dict(binding)
    for pattern_arg, candidate_arg in zip(pattern.args, candidate.args):
        if isinstance(pattern_arg, Constant):
            if pattern_arg != candidate_arg:
                return None
        elif isinstance(pattern_arg, Variable):
            bound = extended.get(pattern_arg)
            if bound is None:
                extended[pattern_arg] = candidate_arg
            elif bound != candidate_arg:
                return None
        else:  # nulls never occur in rule bodies
            if pattern_arg != candidate_arg:
                return None
    return extended


def _order_atoms(atoms: Sequence[Atom]) -> List[Atom]:
    """Order body atoms to make the backtracking join cheap.

    The guard-like atom with the most variables goes first (it binds
    the most), then atoms are picked greedily by how many of their
    variables are already bound.
    """
    remaining = list(atoms)
    if not remaining:
        return []
    ordered: List[Atom] = []
    first = max(remaining, key=lambda a: len(a.variables()))
    ordered.append(first)
    remaining.remove(first)
    bound: Set[Variable] = set(first.variables())
    while remaining:
        best = max(remaining, key=lambda a: (len(a.variables() & bound), -len(a.variables())))
        ordered.append(best)
        remaining.remove(best)
        bound |= best.variables()
    return ordered


# ---------------------------------------------------------------------------
# Reference implementation (the executable specification)
# ---------------------------------------------------------------------------


def find_homomorphisms_reference(
    atoms: Sequence[Atom],
    target: Instance,
    seed: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """Enumerate homomorphisms with the original dict-copying join.

    Kept as the specification that :class:`BodyPlan` is tested against
    and as the "before" path of the engine benchmark.  New code should
    call :func:`find_homomorphisms`.
    """
    ordered = _order_atoms(atoms)

    def backtrack(index: int, binding: Substitution) -> Iterator[Substitution]:
        if index == len(ordered):
            yield dict(binding)
            return
        pattern = ordered[index]
        bound_positions = {
            i: binding[arg]
            for i, arg in enumerate(pattern.args)
            if isinstance(arg, Variable) and arg in binding
        }
        # candidates_view matches the pre-refactor cost profile (the
        # original code read the live index set); the reference engine,
        # like the compiled one, never mutates during enumeration.
        for candidate in target.candidates_view(pattern.predicate, bound_positions):
            extended = _match_atom(pattern, candidate, binding)
            if extended is not None:
                yield from backtrack(index + 1, extended)

    yield from backtrack(0, dict(seed or {}))


def find_homomorphisms_with_forced_atom_reference(
    atoms: Sequence[Atom],
    target: Instance,
    forced_index: int,
    forced_atom: Atom,
) -> Iterator[Substitution]:
    """Forced-atom enumeration on top of the reference join."""
    pattern = atoms[forced_index]
    seed = _match_atom(pattern, forced_atom, {})
    if seed is None:
        return
    rest = [a for i, a in enumerate(atoms) if i != forced_index]
    if not rest:
        yield seed
        return
    yield from find_homomorphisms_reference(rest, target, seed=seed)


# ---------------------------------------------------------------------------
# Compiled plans
# ---------------------------------------------------------------------------

#: Sentinel marking an unbound variable slot.
_UNSET = object()

#: A per-atom evaluation step: (predicate, const_positions, bound_positions,
#: bind_positions, check_positions).  Positions are 0-based argument indexes;
#: slots are indexes into the plan's slot array.
_Step = Tuple[
    Predicate,
    Tuple[Tuple[int, Term], ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[int, int], ...],
]


def classify_atom_positions(
    pattern: Atom, bound: Set[Variable], slot_of: Dict[Variable, int]
) -> _Step:
    """Classify a pattern atom's argument positions against a slot map.

    Returns ``(predicate, consts, lookups, binds, checks)``: constant
    positions (equality against a fixed term), positions whose variable
    is already in ``bound`` (usable for index lookups), first
    occurrences of fresh variables (bind the slot), and repeated
    occurrences within this atom (check against the just-bound slot).
    Shared by :meth:`BodyPlan._build_steps` and the delta-plan pattern
    matcher in ``chase/plan.py``.
    """
    consts: List[Tuple[int, Term]] = []
    lookups: List[Tuple[int, int]] = []
    binds: List[Tuple[int, int]] = []
    checks: List[Tuple[int, int]] = []
    fresh_here: Set[Variable] = set()
    for i, arg in enumerate(pattern.args):
        if not isinstance(arg, Variable):
            consts.append((i, arg))
        elif arg in bound:
            lookups.append((i, slot_of[arg]))
        elif arg in fresh_here:
            checks.append((i, slot_of[arg]))
        else:
            binds.append((i, slot_of[arg]))
            fresh_here.add(arg)
    return (pattern.predicate, tuple(consts), tuple(lookups), tuple(binds), tuple(checks))


def _plan_order(
    atoms: Sequence[Atom],
    bound: FrozenSet[Variable],
    selectivity: Optional[Callable[[Predicate], int]],
) -> List[Atom]:
    """Greedy join order: mirror :func:`_order_atoms`, with two twists.

    Variables in ``bound`` count as already bound (they come from a seed
    known at compile time), and ``selectivity`` (a per-predicate atom
    count, see :meth:`Instance.count`) breaks ties in favour of smaller
    relations.
    """
    remaining = list(atoms)
    if not remaining:
        return []
    ordered: List[Atom] = []
    known: Set[Variable] = set(bound)

    def sel(a: Atom) -> int:
        return selectivity(a.predicate) if selectivity is not None else 0

    if not known:
        first = max(remaining, key=lambda a: (len(a.variables()), -sel(a)))
        ordered.append(first)
        remaining.remove(first)
        known |= first.variables()
    while remaining:
        best = max(
            remaining,
            key=lambda a: (len(a.variables() & known), -len(a.variables()), -sel(a)),
        )
        ordered.append(best)
        remaining.remove(best)
        known |= best.variables()
    return ordered


class BodyPlan:
    """A compiled backtracking join for a fixed sequence of atoms.

    The plan is built once per (body, initially-bound variables) pair:
    it fixes the atom order, assigns every variable an integer slot, and
    precomputes per atom which argument positions are constants, which
    are guaranteed bound when the atom is reached (usable for index
    lookups), which bind a fresh variable, and which must be checked
    against a slot bound earlier within the same atom.  Enumeration then
    binds and unbinds candidate terms in one mutable slot array — no
    per-candidate dict copies.

    Parameters
    ----------
    atoms:
        The conjunction to map into the target instance.
    bound_first:
        Variables that every seed passed to :meth:`enumerate` will bind.
        Seeding a different variable set still works (the templates are
        rebuilt for that call) but loses the precompiled fast path.
    selectivity:
        Optional per-predicate atom count used to refine the join order
        (smaller relations first among otherwise equal choices).
    """

    __slots__ = (
        "atoms",
        "ordered",
        "variables",
        "slot_of",
        "_bound_first",
        "_steps",
        "_emit",
    )

    def __init__(
        self,
        atoms: Sequence[Atom],
        bound_first: Iterable[Variable] = (),
        selectivity: Optional[Callable[[Predicate], int]] = None,
    ) -> None:
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        self._bound_first: FrozenSet[Variable] = frozenset(bound_first)
        self.ordered: Tuple[Atom, ...] = tuple(
            _plan_order(self.atoms, self._bound_first, selectivity)
        )
        # Slot assignment: bound-first variables get the low slots, the
        # rest follow in order of first appearance along the atom order.
        # Bound-first variables keep a slot even when they do not occur
        # in the atoms: delta plans seed them from the forced atom and
        # read them back out of the slot array.
        slot_of: Dict[Variable, int] = {}
        for v in sorted(self._bound_first, key=lambda v: v.name):
            slot_of[v] = len(slot_of)
        for a in self.ordered:
            for arg in a.args:
                if isinstance(arg, Variable) and arg not in slot_of:
                    slot_of[arg] = len(slot_of)
        self.slot_of = slot_of
        self.variables: Tuple[Variable, ...] = tuple(
            sorted(slot_of, key=lambda v: slot_of[v])
        )
        self._steps: Tuple[_Step, ...] = self._build_steps(self._bound_first)
        self._emit: Tuple[Tuple[Variable, int], ...] = tuple(slot_of.items())

    def _build_steps(self, initially_bound: FrozenSet[Variable]) -> Tuple[_Step, ...]:
        """Per-atom bound-position templates for a given seeded-variable set."""
        steps: List[_Step] = []
        bound: Set[Variable] = set(initially_bound)
        for pattern in self.ordered:
            steps.append(classify_atom_positions(pattern, bound, self.slot_of))
            bound |= pattern.variables()
        return tuple(steps)

    def iter_bindings(
        self, target: Instance, slots: Optional[List] = None
    ) -> Iterator[List]:
        """Yield the live slot array for every homomorphism into ``target``.

        This is the zero-copy engine under :meth:`enumerate`: the
        *same* list object is yielded each time, so the caller must copy
        out the terms it needs before advancing the generator.  When
        ``slots`` is given it must have exactly the plan's
        ``bound_first`` variables set (everything else ``_UNSET``);
        ``target`` must not be mutated while the generator is live.
        """
        if slots is None:
            slots = [_UNSET] * len(self.variables)
        yield from self._backtrack(target, slots, self._steps, 0)

    def _backtrack(
        self, target: Instance, slots: List, steps: Tuple[_Step, ...], index: int
    ) -> Iterator[List]:
        if index == len(steps):
            yield slots
            return
        predicate, consts, lookups, binds, checks = steps[index]
        bound_positions: Dict[int, Term] = dict(consts)
        for pos, slot in lookups:
            bound_positions[pos] = slots[slot]
        candidates = target.candidates_view(predicate, bound_positions)
        if not candidates:
            return
        next_index = index + 1
        for candidate in candidates:
            args = candidate.args
            for pos, slot in binds:
                slots[slot] = args[pos]
            ok = True
            for pos, slot in checks:
                if slots[slot] != args[pos]:
                    ok = False
                    break
            if ok:
                yield from self._backtrack(target, slots, steps, next_index)
        for _, slot in binds:
            slots[slot] = _UNSET

    def enumerate(
        self, target: Instance, seed: Optional[Substitution] = None
    ) -> Iterator[Substitution]:
        """Enumerate homomorphisms from the plan's atoms into ``target``.

        ``target`` must not be mutated while the generator is live (the
        plan iterates live index views).  Each yielded substitution is a
        fresh dict covering the plan's variables plus any seed entries.
        """
        slots: List = [_UNSET] * len(self.variables)
        extras: Dict[Variable, Term] = {}
        seeded: Set[Variable] = set()
        if seed:
            for var, term in seed.items():
                idx = self.slot_of.get(var)
                if idx is None:
                    extras[var] = term
                else:
                    slots[idx] = term
                    seeded.add(var)
        steps = (
            self._steps
            if frozenset(seeded) == self._bound_first
            else self._build_steps(frozenset(seeded))
        )
        emit = self._emit
        for bound in self._backtrack(target, slots, steps, 0):
            result = dict(extras)
            for var, slot in emit:
                value = bound[slot]
                if value is not _UNSET:
                    result[var] = value
            yield result


# Plans are cached per (atoms, seeded variables).  The cache is bounded
# by the number of distinct rule bodies/heads the process ever compiles;
# a hard cap guards against pathological churn (e.g. fuzzing loops).
_PLAN_CACHE: Dict[Tuple[Tuple[Atom, ...], FrozenSet[Variable]], BodyPlan] = {}
_PLAN_CACHE_CAP = 8192


def compile_plan(
    atoms: Sequence[Atom],
    bound_first: Iterable[Variable] = (),
    selectivity: Optional[Callable[[Predicate], int]] = None,
) -> BodyPlan:
    """Compile (or fetch from cache) the :class:`BodyPlan` for ``atoms``.

    Plans compiled with a ``selectivity`` hint are not cached: the hint
    is a property of one instance, not of the body.
    """
    if selectivity is not None:
        return BodyPlan(atoms, bound_first, selectivity)
    key = (tuple(atoms), frozenset(bound_first))
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_CAP:
            _PLAN_CACHE.clear()
        plan = BodyPlan(key[0], key[1])
        _PLAN_CACHE[key] = plan
    return plan


def find_homomorphisms(
    atoms: Sequence[Atom],
    target: Instance,
    seed: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """Enumerate homomorphisms from ``atoms`` into ``target``.

    ``seed`` optionally fixes a partial binding (used by the chase
    engine to force a body atom onto a freshly derived atom, giving a
    semi-naive evaluation).  Runs on a cached compiled plan.

    ``target`` must not be mutated while the generator is live: the
    plan iterates live index views.  Materialise the results first
    (``list(find_homomorphisms(...))``) if you need to mutate.
    """
    bound_first: Iterable[Variable] = seed.keys() if seed else ()
    yield from compile_plan(atoms, bound_first).enumerate(target, seed)


def find_homomorphisms_with_forced_atom(
    atoms: Sequence[Atom],
    target: Instance,
    forced_index: int,
    forced_atom: Atom,
) -> Iterator[Substitution]:
    """Homomorphisms where body atom ``forced_index`` maps onto ``forced_atom``.

    This is the delta step of semi-naive evaluation: every new trigger
    must use at least one newly derived atom, so it suffices to force
    each body atom in turn onto each new atom.  Like
    :func:`find_homomorphisms`, ``target`` must not be mutated while
    the generator is live.
    """
    pattern = atoms[forced_index]
    seed = _match_atom(pattern, forced_atom, {})
    if seed is None:
        return
    rest = [a for i, a in enumerate(atoms) if i != forced_index]
    yield from compile_plan(rest, seed.keys()).enumerate(target, seed)


def extend_homomorphism(
    head_atoms: Sequence[Atom],
    target: Instance,
    base: Substitution,
) -> Optional[Substitution]:
    """Find an extension of ``base`` mapping ``head_atoms`` into ``target``.

    This is the satisfaction test of a TGD (and the activeness test of
    the restricted chase): given a body homomorphism ``base``, look for
    ``h' ⊇ base|frontier`` mapping the head into the instance.  Returns
    one witness extension or ``None``.  The compiled head plan is cached
    per (head, seeded variables), so repeated activeness checks of the
    same rule reuse one plan.
    """
    for extension in compile_plan(head_atoms, base.keys()).enumerate(target, dict(base)):
        return extension
    return None
