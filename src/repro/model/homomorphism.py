"""Substitutions and homomorphism search.

A homomorphism from a set of atoms ``A`` to a set of atoms ``B`` is a
substitution over the terms of ``A`` that is the identity on constants
and maps every atom of ``A`` to an atom of ``B``.  The chase engine and
the restricted-chase activeness test both reduce to enumerating the
homomorphisms from a rule body (a small conjunction of atoms over
variables) into a large instance; :func:`find_homomorphisms` implements
this as an index-backed backtracking join.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom
from repro.model.instance import Instance
from repro.model.terms import Constant, Term, Variable

Substitution = Dict[Variable, Term]


def apply_substitution(atom: Atom, substitution: Substitution) -> Atom:
    """Apply a variable substitution to an atom."""
    new_args = tuple(
        substitution.get(arg, arg) if isinstance(arg, Variable) else arg
        for arg in atom.args
    )
    return Atom(atom.predicate, new_args)


def is_homomorphism(
    atoms: Sequence[Atom], target: Instance, substitution: Substitution
) -> bool:
    """Check that ``substitution`` maps every atom of ``atoms`` into ``target``."""
    for a in atoms:
        image = apply_substitution(a, substitution)
        if not image.is_ground or image not in target:
            return False
    return True


def _match_atom(
    pattern: Atom, candidate: Atom, binding: Substitution
) -> Optional[Substitution]:
    """Try to extend ``binding`` so that ``pattern`` maps onto ``candidate``."""
    if pattern.predicate != candidate.predicate:
        return None
    extended = dict(binding)
    for pattern_arg, candidate_arg in zip(pattern.args, candidate.args):
        if isinstance(pattern_arg, Constant):
            if pattern_arg != candidate_arg:
                return None
        elif isinstance(pattern_arg, Variable):
            bound = extended.get(pattern_arg)
            if bound is None:
                extended[pattern_arg] = candidate_arg
            elif bound != candidate_arg:
                return None
        else:  # nulls never occur in rule bodies
            if pattern_arg != candidate_arg:
                return None
    return extended


def _order_atoms(atoms: Sequence[Atom]) -> List[Atom]:
    """Order body atoms to make the backtracking join cheap.

    The guard-like atom with the most variables goes first (it binds
    the most), then atoms are picked greedily by how many of their
    variables are already bound.
    """
    remaining = list(atoms)
    if not remaining:
        return []
    ordered: List[Atom] = []
    first = max(remaining, key=lambda a: len(a.variables()))
    ordered.append(first)
    remaining.remove(first)
    bound: Set[Variable] = set(first.variables())
    while remaining:
        best = max(remaining, key=lambda a: (len(a.variables() & bound), -len(a.variables())))
        ordered.append(best)
        remaining.remove(best)
        bound |= best.variables()
    return ordered


def find_homomorphisms(
    atoms: Sequence[Atom],
    target: Instance,
    seed: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """Enumerate homomorphisms from ``atoms`` into ``target``.

    ``seed`` optionally fixes a partial binding (used by the chase
    engine to force a body atom onto a freshly derived atom, giving a
    semi-naive evaluation).
    """
    ordered = _order_atoms(atoms)

    def backtrack(index: int, binding: Substitution) -> Iterator[Substitution]:
        if index == len(ordered):
            yield dict(binding)
            return
        pattern = ordered[index]
        bound_positions = {
            i: binding[arg]
            for i, arg in enumerate(pattern.args)
            if isinstance(arg, Variable) and arg in binding
        }
        for candidate in target.candidates(pattern.predicate, bound_positions):
            extended = _match_atom(pattern, candidate, binding)
            if extended is not None:
                yield from backtrack(index + 1, extended)

    yield from backtrack(0, dict(seed or {}))


def find_homomorphisms_with_forced_atom(
    atoms: Sequence[Atom],
    target: Instance,
    forced_index: int,
    forced_atom: Atom,
) -> Iterator[Substitution]:
    """Homomorphisms where body atom ``forced_index`` maps onto ``forced_atom``.

    This is the delta step of semi-naive evaluation: every new trigger
    must use at least one newly derived atom, so it suffices to force
    each body atom in turn onto each new atom.
    """
    pattern = atoms[forced_index]
    seed = _match_atom(pattern, forced_atom, {})
    if seed is None:
        return
    rest = [a for i, a in enumerate(atoms) if i != forced_index]
    if not rest:
        yield seed
        return
    yield from find_homomorphisms(rest, target, seed=seed)


def extend_homomorphism(
    head_atoms: Sequence[Atom],
    target: Instance,
    base: Substitution,
) -> Optional[Substitution]:
    """Find an extension of ``base`` mapping ``head_atoms`` into ``target``.

    This is the satisfaction test of a TGD (and the activeness test of
    the restricted chase): given a body homomorphism ``base``, look for
    ``h' ⊇ base|frontier`` mapping the head into the instance.  Returns
    one witness extension or ``None``.
    """
    for extension in find_homomorphisms(head_atoms, target, seed=dict(base)):
        return extension
    return None
