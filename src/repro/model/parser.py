"""A small concrete syntax for databases and TGD programs.

The syntax is deliberately close to the Datalog± notation used by chase
engines such as Graal and VLog:

* atoms: ``R(x, y)``; identifiers starting with an upper-case letter or
  a digit (or quoted with double quotes) are constants inside
  databases, every argument inside a rule is a variable;
* facts: ``R(a, b).`` one per line (trailing dot optional);
* TGDs: ``R(x, y), S(y) -> exists z . T(x, z), U(z)`` (the
  ``exists ... .`` prefix is optional and inferred from variables that
  appear only in the head);
* comments: from ``%`` or ``#`` to the end of the line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.terms import Constant, Term, Variable
from repro.model.tgd import TGD, TGDSet
from repro.model.instance import Database


class ParseError(ValueError):
    """Raised when a program or database text cannot be parsed."""


_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_\[\]\{\},:|()<>-]*)\s*\(([^()]*)\)\s*")
_IDENT_RE = re.compile(r"^[A-Za-z0-9_\"'.\[\]-]+$")


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        for marker in ("%", "#"):
            idx = line.find(marker)
            if idx >= 0:
                line = line[:idx]
        lines.append(line)
    return "\n".join(lines)


def _split_atoms(text: str) -> List[str]:
    """Split a conjunction at commas that are not nested inside parentheses."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced parentheses in {text!r}")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ParseError(f"unbalanced parentheses in {text!r}")
    last = "".join(current).strip()
    if last:
        parts.append(last)
    return [p.strip() for p in parts if p.strip()]


def _parse_term(token: str, as_fact: bool) -> Term:
    token = token.strip()
    if not token or not _IDENT_RE.match(token):
        raise ParseError(f"invalid term {token!r}")
    if token.startswith('"') and token.endswith('"'):
        return Constant(token[1:-1])
    if as_fact:
        return Constant(token)
    return Variable(token)


def parse_atom(text: str, as_fact: bool = False) -> Atom:
    """Parse a single atom.  With ``as_fact=True`` arguments are constants."""
    match = _ATOM_RE.fullmatch(text)
    if not match:
        raise ParseError(f"cannot parse atom {text!r}")
    name, args_text = match.group(1), match.group(2)
    args_text = args_text.strip()
    arg_tokens = [t for t in (s.strip() for s in args_text.split(",")) if t] if args_text else []
    args = tuple(_parse_term(token, as_fact) for token in arg_tokens)
    return Atom(Predicate(name, len(args)), args)


def parse_tgd(text: str, rule_id: str | None = None) -> TGD:
    """Parse a TGD from ``body -> [exists z1, z2 .] head`` syntax."""
    text = _strip_comments(text).strip().rstrip(".")
    if "->" not in text:
        raise ParseError(f"a TGD needs a '->': {text!r}")
    body_text, head_text = text.split("->", 1)
    head_text = head_text.strip()
    declared_existentials: List[str] = []
    if head_text.lower().startswith("exists"):
        remainder = head_text[len("exists"):]
        if "." not in remainder:
            raise ParseError(f"'exists' prefix needs a '.' separator in {text!r}")
        vars_text, head_text = remainder.split(".", 1)
        declared_existentials = [v.strip() for v in vars_text.split(",") if v.strip()]
    body = tuple(parse_atom(part) for part in _split_atoms(body_text))
    head = tuple(parse_atom(part) for part in _split_atoms(head_text))
    kwargs = {"rule_id": rule_id} if rule_id is not None else {}
    tgd = TGD(body=body, head=head, **kwargs)
    if declared_existentials:
        declared = {Variable(v) for v in declared_existentials}
        if declared != tgd.existential_variables():
            raise ParseError(
                f"declared existential variables {sorted(v.name for v in declared)} "
                f"do not match head-only variables in {text!r}"
            )
    return tgd


def parse_program(text: str, name: str = "Sigma") -> TGDSet:
    """Parse a whole program: one TGD per (non-empty, non-comment) line."""
    tgds: List[TGD] = []
    for i, line in enumerate(_strip_comments(text).splitlines()):
        line = line.strip()
        if not line:
            continue
        tgds.append(parse_tgd(line, rule_id=f"{name}_r{i}"))
    if not tgds:
        raise ParseError("program contains no TGDs")
    return TGDSet(tgds, name=name)


def parse_database(text: str) -> Database:
    """Parse a database: one fact per (non-empty, non-comment) line."""
    database = Database()
    for line in _strip_comments(text).splitlines():
        line = line.strip().rstrip(".")
        if not line:
            continue
        database.add(parse_atom(line, as_fact=True))
    return database
