"""Terms: constants, variables, and labelled nulls.

The paper works with three disjoint countably infinite sets of terms:
constants ``C``, labelled nulls ``N``, and variables ``V``.  Labelled
nulls are the values invented by the chase for existentially quantified
variables.  In the semi-oblivious chase a null is uniquely determined by
the trigger restricted to the frontier, i.e. it carries the label
``⊥^z_{σ, h|fr(σ)}`` (Definition 3.1).  We therefore identify a null by
the triple (rule identifier, frontier binding, existential variable),
which makes trigger application idempotent by construction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Tuple, Union


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant from the countably infinite set ``C``."""

    name: str
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Constants are hashed on every instance-index lookup; caching
        # the hash keeps that O(1) instead of re-hashing the name.
        object.__setattr__(self, "_hash", hash((Constant, self.name)))

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constant({self.name!r})"

    def __str__(self) -> str:
        return self.name

    @property
    def depth(self) -> int:
        """Constants have depth 0 (Definition 4.3)."""
        return 0

    @property
    def is_null(self) -> bool:
        return False

    @property
    def is_constant(self) -> bool:
        return True

    @property
    def is_variable(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Variable:
    """A variable from the countably infinite set ``V``.

    Variables only appear inside TGDs and conjunctive queries, never in
    instances.
    """

    name: str
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Variables key substitution dicts on the join's hot path.
        object.__setattr__(self, "_hash", hash((Variable, self.name)))

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"

    @property
    def is_null(self) -> bool:
        return False

    @property
    def is_constant(self) -> bool:
        return False

    @property
    def is_variable(self) -> bool:
        return True


# Interning table for null identities.  A null's label nests the labels
# of the terms in its binding; comparing or hashing those labels
# structurally would recurse as deeply as the chase is, so each distinct
# label is assigned a small integer once and identity reduces to that
# integer.  The table only grows with the number of *distinct* nulls
# ever created in the process, which is bounded by the materialised
# chase sizes.
_NULL_INTERN: dict = {}

#: Guards the read-len-then-insert in ``Null.__post_init__``: the chase
#: service scheduler runs chases from several threads of one process,
#: and two racing inserts computing ``len(_NULL_INTERN)`` before either
#: lands would assign the same uid to two distinct nulls (silent atom
#: merging).  Single-threaded callers pay one uncontended acquire per
#: *distinct* null, which is noise next to building the key tuple.
_NULL_INTERN_LOCK = threading.Lock()


def trim_null_intern(threshold: int = 0) -> int:
    """Clear the intern table once it exceeds ``threshold`` entries;
    returns how many entries were dropped (0 if under the threshold).

    The table grows with every distinct null the *process* ever
    creates — fine for one-shot batch runs, unbounded for the chase
    service daemon, which re-parses programs (fresh rule ids) per
    execution so no entry is ever reused.  Only call this when no
    ``Null`` from an earlier run can ever be compared with one created
    later: uids restart from zero, so a stale null held across the
    trim could alias a fresh one.  The daemon's scheduler calls it
    between executions, when results have already been reduced to
    plain text and no chase is running.
    """
    with _NULL_INTERN_LOCK:
        size = len(_NULL_INTERN)
        if size <= threshold:
            return 0
        _NULL_INTERN.clear()
        return size


@dataclass(frozen=True, eq=False)
class Null:
    """A labelled null ``⊥^var_{rule, binding}`` from the set ``N``.

    Attributes
    ----------
    rule_id:
        Identifier of the TGD whose trigger invented this null.
    variable:
        Name of the existentially quantified head variable the null was
        invented for.
    binding:
        The trigger's homomorphism restricted to the frontier of the
        rule (for the semi-oblivious chase) or to the whole body (for
        the oblivious chase), as a sorted tuple of
        ``(variable name, term)`` pairs.  Because the binding is part of
        the identity, re-firing the same trigger reproduces *equal*
        nulls, which is exactly what makes the semi-oblivious chase
        insensitive to the order of trigger applications.
    depth:
        The depth of the null per Definition 4.3, precomputed at
        creation time: ``1 + max(depth of binding terms, 0)``.
    uid:
        The interned identity; equality and hashing use only this, so
        deeply nested nulls stay O(1) to compare.
    """

    rule_id: str
    variable: str
    binding: Tuple[Tuple[str, "GroundTerm"], ...]
    depth: int = -1
    uid: int = -1

    def __post_init__(self) -> None:
        if self.depth < 0:
            computed = 1 + max((term.depth for _, term in self.binding), default=0)
            object.__setattr__(self, "depth", computed)
        key = (
            self.rule_id,
            self.variable,
            tuple(
                (name, term.uid if isinstance(term, Null) else ("c", term.name))
                for name, term in self.binding
            ),
        )
        with _NULL_INTERN_LOCK:
            interned = _NULL_INTERN.setdefault(key, len(_NULL_INTERN))
        object.__setattr__(self, "uid", interned)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Null):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        # The interned uid is already a small unique int; use it directly.
        return self.uid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Null({self.rule_id!r}, {self.variable!r}, depth={self.depth})"

    def __str__(self) -> str:
        return f"_:{self.variable}_{self.uid}"

    @property
    def is_null(self) -> bool:
        return True

    @property
    def is_constant(self) -> bool:
        return False

    @property
    def is_variable(self) -> bool:
        return False


GroundTerm = Union[Constant, Null]
Term = Union[Constant, Variable, Null]


def make_null(rule_id: str, variable: str, binding: dict) -> Null:
    """Create the canonical null for a (rule, frontier binding, variable).

    ``binding`` maps frontier variable names to ground terms; it is
    normalised to a sorted tuple so equal bindings always yield equal
    nulls.
    """
    items = tuple(sorted(binding.items(), key=lambda kv: kv[0]))
    return Null(rule_id=rule_id, variable=variable, binding=items)


def term_depth(term: Term) -> int:
    """Depth of a term per Definition 4.3 (variables are not ranked)."""
    if isinstance(term, Constant):
        return 0
    if isinstance(term, Null):
        return term.depth
    raise TypeError(f"variables have no depth: {term!r}")


def is_ground(term: Term) -> bool:
    """True for constants and nulls, false for variables."""
    return not isinstance(term, Variable)
