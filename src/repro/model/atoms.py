"""Atoms, predicates and predicate positions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.model.terms import Constant, Null, Term, Variable


@dataclass(frozen=True, slots=True)
class Predicate:
    """A relation symbol with an associated arity (``R/n``)."""

    name: str
    arity: int
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ValueError(f"arity must be non-negative, got {self.arity}")
        # Predicates key every instance index; cache the hash so index
        # lookups do not re-hash the name on every probe.
        object.__setattr__(self, "_hash", hash((Predicate, self.name, self.arity)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"

    def positions(self) -> Tuple["Position", ...]:
        """All positions ``(R, 1), ..., (R, n)`` of this predicate.

        Positions are 1-based as in the paper.
        """
        return tuple(Position(self, i) for i in range(1, self.arity + 1))


@dataclass(frozen=True, slots=True)
class Position:
    """A predicate position ``(R, i)`` identifying the i-th argument of R.

    The index ``i`` is 1-based, matching the paper's convention.
    """

    predicate: Predicate
    index: int

    def __post_init__(self) -> None:
        if not 1 <= self.index <= self.predicate.arity:
            raise ValueError(
                f"position index {self.index} out of range for {self.predicate}"
            )

    def __str__(self) -> str:
        return f"({self.predicate.name},{self.index})"


@dataclass(frozen=True, slots=True)
class Atom:
    """An atom ``R(t_1, ..., t_n)`` over constants, nulls and variables."""

    predicate: Predicate
    args: Tuple[Term, ...]
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.args) != self.predicate.arity:
            raise ValueError(
                f"{self.predicate} expects {self.predicate.arity} arguments, "
                f"got {len(self.args)}"
            )
        # Atoms live in several hash sets at once (the instance's atom
        # set plus two secondary indexes); the cached hash makes each
        # membership probe O(1) instead of O(arity).
        object.__setattr__(self, "_hash", hash((self.predicate, self.args)))

    def __hash__(self) -> int:
        return self._hash

    @staticmethod
    def from_trusted(predicate: "Predicate", args: Tuple[Term, ...]) -> "Atom":
        """Construct without arity validation (decode hot path).

        The fact store decodes tens of thousands of atoms whose shape
        is correct by construction; this skips the dataclass ``__init__``
        machinery while producing an atom indistinguishable from
        ``Atom(predicate, args)`` (same fields, same cached hash).
        """
        atom = Atom.__new__(Atom)
        object.__setattr__(atom, "predicate", predicate)
        object.__setattr__(atom, "args", args)
        object.__setattr__(atom, "_hash", hash((predicate, args)))
        return atom

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.predicate.name}({inner})"

    @property
    def is_fact(self) -> bool:
        """True if every argument is a constant."""
        return all(isinstance(arg, Constant) for arg in self.args)

    @property
    def is_ground(self) -> bool:
        """True if no argument is a variable (constants and nulls allowed)."""
        return not any(isinstance(arg, Variable) for arg in self.args)

    def variables(self) -> Set[Variable]:
        """The set of variables occurring in the atom (``var(α)``)."""
        return {arg for arg in self.args if isinstance(arg, Variable)}

    def constants(self) -> Set[Constant]:
        return {arg for arg in self.args if isinstance(arg, Constant)}

    def nulls(self) -> Set[Null]:
        return {arg for arg in self.args if isinstance(arg, Null)}

    def terms(self) -> Set[Term]:
        """The set of (distinct) terms occurring in the atom."""
        return set(self.args)

    def positions_of(self, term: Term) -> Tuple[Position, ...]:
        """Positions at which ``term`` occurs (``pos(α, x)``)."""
        return tuple(
            Position(self.predicate, i + 1)
            for i, arg in enumerate(self.args)
            if arg == term
        )

    def depth(self) -> int:
        """Atom depth: the maximum depth over its (ground) terms.

        Only meaningful for ground atoms; raises for atoms with
        variables.
        """
        if not self.is_ground:
            raise ValueError(f"depth undefined for non-ground atom {self}")
        return max((arg.depth for arg in self.args), default=0)

    def substitute(self, mapping: Dict[Term, Term]) -> "Atom":
        """Apply a substitution to the atom's arguments."""
        return Atom(self.predicate, tuple(mapping.get(arg, arg) for arg in self.args))


def atom(name: str, *args: Term) -> Atom:
    """Convenience constructor: ``atom("R", x, y)`` builds ``R(x, y)``."""
    return Atom(Predicate(name, len(args)), tuple(args))


def atoms_schema(atoms: Iterable[Atom]) -> Set[Predicate]:
    """The set of predicates occurring in a collection of atoms."""
    return {a.predicate for a in atoms}


def atoms_variables(atoms: Iterable[Atom]) -> Set[Variable]:
    """The set of variables occurring in a collection of atoms."""
    result: Set[Variable] = set()
    for a in atoms:
        result |= a.variables()
    return result


def atoms_terms(atoms: Iterable[Atom]) -> Set[Term]:
    """The set of terms occurring in a collection of atoms."""
    result: Set[Term] = set()
    for a in atoms:
        result |= a.terms()
    return result


def positions_of_variable(atoms: Sequence[Atom], variable: Variable) -> List[Position]:
    """``pos(A, x)`` for a set of atoms ``A``: positions at which x occurs."""
    result: List[Position] = []
    for a in atoms:
        result.extend(a.positions_of(variable))
    return result
