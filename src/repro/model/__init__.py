"""Relational model substrate.

This subpackage provides the first-order relational machinery the paper
relies on: terms (constants, variables, labelled nulls), atoms and
predicate positions, instances and databases, tuple-generating
dependencies (TGDs), homomorphisms, and a small concrete syntax.
"""

from repro.model.terms import Constant, Null, Term, Variable
from repro.model.atoms import Atom, Predicate, Position
from repro.model.instance import Database, Instance
from repro.model.store import FactStore
from repro.model.tgd import TGD, TGDSet
from repro.model.homomorphism import (
    BodyPlan,
    Substitution,
    compile_plan,
    extend_homomorphism,
    find_homomorphisms,
    find_homomorphisms_with_forced_atom,
    is_homomorphism,
)
from repro.model.parser import parse_atom, parse_database, parse_program, parse_tgd
from repro.model.serialization import (
    atom_to_text,
    database_to_text,
    program_to_text,
    tgd_to_text,
)

__all__ = [
    "Term",
    "Constant",
    "Variable",
    "Null",
    "Predicate",
    "Position",
    "Atom",
    "Instance",
    "Database",
    "FactStore",
    "TGD",
    "TGDSet",
    "Substitution",
    "BodyPlan",
    "compile_plan",
    "find_homomorphisms",
    "find_homomorphisms_with_forced_atom",
    "extend_homomorphism",
    "is_homomorphism",
    "parse_atom",
    "parse_tgd",
    "parse_program",
    "parse_database",
    "atom_to_text",
    "tgd_to_text",
    "program_to_text",
    "database_to_text",
]
