"""Instances and databases.

An *instance* is a (possibly large) set of ground atoms over constants
and nulls; a *database* is a finite set of facts (atoms over constants
only).  The :class:`Instance` class maintains secondary indexes so the
chase engine and the homomorphism search can enumerate candidate atoms
without scanning the whole instance.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.terms import Constant, Null, Term

#: Shared empty result for index misses; never mutated.
_EMPTY_ATOMS: Set[Atom] = frozenset()  # type: ignore[assignment]


class Instance:
    """A mutable set of ground atoms with predicate and position indexes.

    The instance rejects atoms containing variables: those belong to
    rules and queries, not to data.
    """

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        self._atoms: Set[Atom] = set()
        self._by_predicate: Dict[Predicate, Set[Atom]] = defaultdict(set)
        # (predicate, 0-based position, term) -> atoms having `term` there
        self._by_position: Dict[Tuple[Predicate, int, Term], Set[Atom]] = defaultdict(set)
        # term -> number of argument occurrences across stored atoms.
        # Maintained on add/discard so active_domain()/max_depth() are
        # O(domain)/O(1) instead of rescanning every atom (depth
        # bookkeeping and budget checks consult them per round).
        self._domain: Dict[Term, int] = {}
        self._max_depth = 0
        # Set when the deepest term may have been discarded; the next
        # max_depth() call recomputes from the (maintained) domain.
        self._max_depth_dirty = False
        for a in atoms:
            self.add(a)

    # -- basic protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __contains__(self, a: Atom) -> bool:
        return a in self._atoms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._atoms == other._atoms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance({len(self._atoms)} atoms)"

    # -- mutation --------------------------------------------------------

    def add(self, a: Atom) -> bool:
        """Add an atom; return True if it was not already present."""
        if not a.is_ground:
            raise ValueError(f"instances may only contain ground atoms, got {a}")
        if a in self._atoms:
            return False
        self._index_new(a)
        return True

    def _index_new(self, a: Atom) -> None:
        """Index an atom known to be ground and not yet present."""
        self._atoms.add(a)
        self._by_predicate[a.predicate].add(a)
        domain = self._domain
        for i, term in enumerate(a.args):
            self._by_position[(a.predicate, i, term)].add(a)
            count = domain.get(term)
            if count is None:
                domain[term] = 1
                if not self._max_depth_dirty:
                    depth = term.depth
                    if depth > self._max_depth:
                        self._max_depth = depth
            else:
                domain[term] = count + 1

    def extend_unique_ground(self, atoms: Iterable[Atom]) -> None:
        """Bulk-load atoms the caller guarantees ground and all-new.

        The fact store's decode boundary produces exactly such a
        stream; skipping the per-atom groundness and membership checks
        keeps materialisation cheap.  Feeding a duplicate or non-ground
        atom through this method corrupts the indexes — use
        :meth:`add` unless the guarantee holds by construction.
        """
        for a in atoms:
            self._index_new(a)

    def add_all(self, atoms: Iterable[Atom]) -> List[Atom]:
        """Add several atoms; return the ones that were actually new."""
        return [a for a in atoms if self.add(a)]

    def discard(self, a: Atom) -> bool:
        """Remove an atom if present; return True if it was removed."""
        if a not in self._atoms:
            return False
        self._atoms.discard(a)
        self._by_predicate[a.predicate].discard(a)
        domain = self._domain
        for i, term in enumerate(a.args):
            self._by_position[(a.predicate, i, term)].discard(a)
            count = domain.get(term, 0)
            if count <= 1:
                domain.pop(term, None)
                # The deepest term may just have left the domain; defer
                # the rescan to the next max_depth() call.
                if term.depth >= self._max_depth:
                    self._max_depth_dirty = True
            else:
                domain[term] = count - 1
        return True

    # -- queries ---------------------------------------------------------

    def atoms(self) -> Set[Atom]:
        """A copy of the underlying atom set."""
        return set(self._atoms)

    def atoms_with_predicate(self, predicate: Predicate) -> Set[Atom]:
        """All atoms over the given predicate (empty set if none).

        The returned set is a defensive copy: mutating the instance
        while iterating it is safe.  Hot paths that can guarantee the
        instance is not mutated during iteration should use
        :meth:`candidates_view` instead.
        """
        return set(self._by_predicate.get(predicate, _EMPTY_ATOMS))

    def count(self, predicate: Predicate) -> int:
        """Number of atoms over ``predicate`` (O(1)).

        Used by the join planner as a selectivity hint when ordering
        body atoms.
        """
        bucket = self._by_predicate.get(predicate)
        return len(bucket) if bucket else 0

    def predicates(self) -> Set[Predicate]:
        """Predicates that occur in at least one atom."""
        return {pred for pred, atoms in self._by_predicate.items() if atoms}

    def candidates(self, predicate: Predicate, bound: Dict[int, Term]) -> Set[Atom]:
        """Atoms over ``predicate`` matching the partially bound arguments.

        ``bound`` maps 0-based argument positions to required terms.
        The returned set is always safe to keep across mutations.
        """
        return set(self.candidates_view(predicate, bound))

    def candidates_view(self, predicate: Predicate, bound: Dict[int, Term]) -> Set[Atom]:
        """Like :meth:`candidates`, but may alias internal index sets.

        When ``bound`` pins zero or one positions the result is a *live
        view* of an index bucket: it must not be mutated, and the
        instance must not be mutated while the view is being iterated.
        The chase engine materialises each round's triggers before
        applying any of them, which is exactly what makes this view safe
        on its hot path.  The most selective index entry drives the
        intersection to keep the cost close to the result size.
        """
        if not bound:
            return self._by_predicate.get(predicate, _EMPTY_ATOMS)
        if len(bound) == 1:
            ((i, term),) = bound.items()
            return self._by_position.get((predicate, i, term), _EMPTY_ATOMS)
        # Multi-bound probe: keep only the smallest bucket aside while
        # scanning (no materialised-and-sorted bucket list), and bail
        # out on the first empty bucket before fetching the rest.
        by_position = self._by_position
        smallest: Optional[Set[Atom]] = None
        rest: List[Set[Atom]] = []
        for i, term in bound.items():
            bucket = by_position.get((predicate, i, term))
            if not bucket:
                return _EMPTY_ATOMS
            if smallest is None or len(bucket) < len(smallest):
                if smallest is not None:
                    rest.append(smallest)
                smallest = bucket
            else:
                rest.append(bucket)
        assert smallest is not None
        return smallest.intersection(*rest)

    def active_domain(self) -> Set[Term]:
        """``dom(I)``: all constants and nulls occurring in the instance.

        Served from the maintained occurrence counts — O(|dom(I)|)
        rather than a scan over every atom.
        """
        return set(self._domain)

    def constants(self) -> Set[Constant]:
        return {t for t in self._domain if isinstance(t, Constant)}

    def nulls(self) -> Set[Null]:
        return {t for t in self._domain if isinstance(t, Null)}

    def max_depth(self) -> int:
        """Maximum term depth over the instance (0 for the empty instance).

        O(1) on the add-only path; the first call after a discard that
        may have removed the deepest term recomputes from the domain.
        """
        if self._max_depth_dirty:
            self._max_depth = max((t.depth for t in self._domain), default=0)
            self._max_depth_dirty = False
        return self._max_depth

    def copy(self) -> "Instance":
        return Instance(self._atoms)

    def restrict_to_predicates(self, predicates: Iterable[Predicate]) -> "Instance":
        """The sub-instance containing only atoms over ``predicates``."""
        wanted = set(predicates)
        return Instance(a for a in self._atoms if a.predicate in wanted)


class Database(Instance):
    """A finite set of facts: atoms whose arguments are constants only."""

    def add(self, a: Atom) -> bool:
        if not a.is_fact:
            raise ValueError(f"databases may only contain facts, got {a}")
        return super().add(a)

    def copy(self) -> "Database":
        return Database(self._atoms)

    def as_instance(self) -> Instance:
        """An :class:`Instance` copy of the database (chase starting point)."""
        return Instance(self._atoms)
