"""Tuple-generating dependencies (TGDs) and TGD sets.

A TGD is a constant-free sentence ``∀x̄∀ȳ (φ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄))``.
We represent it as a body (tuple of atoms over variables), a head
(tuple of atoms over variables), and a stable identifier used to label
the nulls it invents.  The class hierarchy of the paper — simple linear
(SL) ⊊ linear (L) ⊊ guarded (G) ⊊ arbitrary TGDs — is exposed through
syntactic predicates on :class:`TGD` and :class:`TGDSet`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom, Position, Predicate, atoms_schema, atoms_variables
from repro.model.terms import Constant, Term, Variable

_FRESH_RULE_COUNTER = itertools.count()


def _fresh_rule_id() -> str:
    return f"r{next(_FRESH_RULE_COUNTER)}"


@dataclass(frozen=True)
class TGD:
    """A tuple-generating dependency ``body → ∃ z̄ head``.

    The body and head are non-empty tuples of atoms whose arguments are
    variables (constants are not allowed, matching the paper's
    definition of constant-free TGDs).
    """

    body: Tuple[Atom, ...]
    head: Tuple[Atom, ...]
    rule_id: str = field(default_factory=_fresh_rule_id)

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("a TGD must have a non-empty body")
        if not self.head:
            raise ValueError("a TGD must have a non-empty head")
        for a in self.body + self.head:
            for arg in a.args:
                if isinstance(arg, Constant):
                    raise ValueError(f"TGDs are constant-free, found {arg} in {a}")
                if not isinstance(arg, Variable):
                    raise ValueError(f"TGD atoms range over variables, found {arg!r}")

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        head = ", ".join(str(a) for a in self.head)
        existentials = sorted(v.name for v in self.existential_variables())
        prefix = f"exists {', '.join(existentials)} . " if existentials else ""
        return f"{body} -> {prefix}{head}"

    # -- variable structure ----------------------------------------------

    def body_variables(self) -> Set[Variable]:
        return atoms_variables(self.body)

    def head_variables(self) -> Set[Variable]:
        return atoms_variables(self.head)

    def frontier(self) -> Set[Variable]:
        """``fr(σ)``: variables shared between body and head."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> Set[Variable]:
        """Head variables that do not occur in the body."""
        return self.head_variables() - self.body_variables()

    # -- syntactic classes -------------------------------------------------

    def guard(self) -> Optional[Atom]:
        """The leftmost body atom containing all body variables, if any."""
        body_vars = self.body_variables()
        for a in self.body:
            if a.variables() >= body_vars:
                return a
        return None

    @property
    def is_guarded(self) -> bool:
        """True if some body atom guards all body variables."""
        return self.guard() is not None

    @property
    def is_linear(self) -> bool:
        """True if the body consists of a single atom."""
        return len(self.body) == 1

    @property
    def is_simple_linear(self) -> bool:
        """True if linear and no variable repeats in the body atom."""
        if not self.is_linear:
            return False
        args = self.body[0].args
        return len(set(args)) == len(args)

    @property
    def is_full(self) -> bool:
        """True if the TGD has no existentially quantified variables."""
        return not self.existential_variables()

    # -- derived data -----------------------------------------------------

    def schema(self) -> Set[Predicate]:
        """Predicates occurring in the TGD."""
        return atoms_schema(self.body + self.head)

    def atoms(self) -> Tuple[Atom, ...]:
        return self.body + self.head

    def positions_of_variable_in_body(self, variable: Variable) -> List[Position]:
        """``pos(body(σ), x)``."""
        positions: List[Position] = []
        for a in self.body:
            positions.extend(a.positions_of(variable))
        return positions

    def rename_apart(self, suffix: str) -> "TGD":
        """A copy with every variable renamed by appending ``suffix``.

        Used to guarantee the standard assumption that no two TGDs of a
        set share a variable.
        """
        mapping: Dict[Term, Term] = {
            v: Variable(f"{v.name}{suffix}") for v in self.body_variables() | self.head_variables()
        }
        return TGD(
            body=tuple(a.substitute(mapping) for a in self.body),
            head=tuple(a.substitute(mapping) for a in self.head),
            rule_id=self.rule_id,
        )


class TGDSet:
    """A finite set ``Σ`` of TGDs with the derived quantities of the paper.

    Exposes ``sch(Σ)``, ``ar(Σ)``, ``atoms(Σ)`` and the norm
    ``‖Σ‖ = |atoms(Σ)| · |sch(Σ)| · ar(Σ)`` used in the size bounds.
    """

    def __init__(self, tgds: Iterable[TGD], name: str = "Sigma") -> None:
        self._tgds: Tuple[TGD, ...] = tuple(tgds)
        self.name = name
        if not self._tgds:
            raise ValueError("a TGD set must contain at least one TGD")
        ids = [t.rule_id for t in self._tgds]
        if len(ids) != len(set(ids)):
            raise ValueError("TGDs in a set must have distinct rule identifiers")

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[TGD]:
        return iter(self._tgds)

    def __len__(self) -> int:
        return len(self._tgds)

    def __getitem__(self, index: int) -> TGD:
        return self._tgds[index]

    def __str__(self) -> str:
        return "\n".join(str(t) for t in self._tgds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TGDSet):
            return NotImplemented
        return set(self._tgds) == set(other._tgds)

    def __hash__(self) -> int:
        return hash(frozenset(self._tgds))

    # -- derived quantities ---------------------------------------------------

    def schema(self) -> Set[Predicate]:
        """``sch(Σ)``: the predicates occurring in Σ."""
        result: Set[Predicate] = set()
        for tgd in self._tgds:
            result |= tgd.schema()
        return result

    def arity(self) -> int:
        """``ar(Σ)``: the maximum arity over the schema of Σ."""
        return max((p.arity for p in self.schema()), default=0)

    def atom_count(self) -> int:
        """``|atoms(Σ)|``: number of atoms occurring in the TGDs of Σ."""
        return sum(len(t.body) + len(t.head) for t in self._tgds)

    def norm(self) -> int:
        """``‖Σ‖ = |atoms(Σ)| · |sch(Σ)| · ar(Σ)``."""
        return self.atom_count() * len(self.schema()) * self.arity()

    def by_rule_id(self) -> Dict[str, TGD]:
        return {t.rule_id: t for t in self._tgds}

    # -- syntactic classes ------------------------------------------------------

    @property
    def is_guarded(self) -> bool:
        return all(t.is_guarded for t in self._tgds)

    @property
    def is_linear(self) -> bool:
        return all(t.is_linear for t in self._tgds)

    @property
    def is_simple_linear(self) -> bool:
        return all(t.is_simple_linear for t in self._tgds)

    def rename_apart(self) -> "TGDSet":
        """Rename variables so that no two TGDs share a variable."""
        renamed = [t.rename_apart(f"_{i}") for i, t in enumerate(self._tgds)]
        return TGDSet(renamed, name=self.name)

    def predicates_in_bodies(self) -> Set[Predicate]:
        result: Set[Predicate] = set()
        for t in self._tgds:
            result |= atoms_schema(t.body)
        return result

    def predicates_in_heads(self) -> Set[Predicate]:
        result: Set[Predicate] = set()
        for t in self._tgds:
            result |= atoms_schema(t.head)
        return result
