"""Triggers and trigger application (Definition 3.1).

A trigger for ``Σ`` on an instance ``I`` is a pair ``(σ, h)`` where
``σ ∈ Σ`` and ``h`` is a homomorphism from ``body(σ)`` to ``I``.  Its
result maps each frontier variable to its image under ``h`` and each
existentially quantified variable ``z`` to the labelled null
``⊥^z_{σ, h|fr(σ)}``.  A trigger is *active* (for the semi-oblivious
chase) if its result is not already contained in ``I``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.model.atoms import Atom
from repro.model.homomorphism import Substitution, apply_substitution
from repro.model.instance import Instance
from repro.model.terms import Term, Variable, make_null


@dataclass(frozen=True)
class Trigger:
    """A trigger ``(σ, h)``: a rule together with a body homomorphism."""

    tgd: "TGD"  # forward reference to avoid import cycle at type level
    homomorphism: Tuple[Tuple[str, Term], ...]

    @staticmethod
    def from_substitution(tgd, substitution: Substitution) -> "Trigger":
        """Build a trigger from a rule and a body substitution."""
        items = tuple(
            sorted(((var.name, term) for var, term in substitution.items()), key=lambda kv: kv[0])
        )
        return Trigger(tgd=tgd, homomorphism=items)

    def substitution(self) -> Dict[Variable, Term]:
        return {Variable(name): term for name, term in self.homomorphism}

    def frontier_binding(self) -> Dict[str, Term]:
        """``h|fr(σ)`` as a mapping from variable names to ground terms."""
        frontier_names = {v.name for v in self.tgd.frontier()}
        return {name: term for name, term in self.homomorphism if name in frontier_names}

    def frontier_key(self) -> Tuple[str, Tuple[Tuple[str, Term], ...]]:
        """Canonical identity of the trigger for the semi-oblivious chase.

        Two triggers with the same rule and the same frontier binding
        produce the same result, so the chase never needs to apply both.
        """
        binding = tuple(sorted(self.frontier_binding().items(), key=lambda kv: kv[0]))
        return (self.tgd.rule_id, binding)

    def full_key(self) -> Tuple[str, Tuple[Tuple[str, Term], ...]]:
        """Identity used by the oblivious chase (keyed by the full body image)."""
        return (self.tgd.rule_id, self.homomorphism)

    # -- results -----------------------------------------------------------

    def result(self, null_binding: Optional[Dict[str, Term]] = None) -> List[Atom]:
        """``result(σ, h)``: the head instantiated with frontier images and nulls.

        ``null_binding`` overrides the binding used to *label* the
        invented nulls; the semi-oblivious chase uses the frontier
        binding (the default), the oblivious chase passes the full body
        binding, and the restricted chase adds a per-application
        discriminator.
        """
        substitution = self.substitution()
        label_binding = null_binding if null_binding is not None else self.frontier_binding()
        mapping: Dict[Variable, Term] = {}
        frontier = self.tgd.frontier()
        for variable in self.tgd.head_variables():
            if variable in frontier:
                mapping[variable] = substitution[variable]
            else:
                mapping[variable] = make_null(self.tgd.rule_id, variable.name, label_binding)
        return [apply_substitution(a, mapping) for a in self.tgd.head]

    # -- activeness ----------------------------------------------------------

    def is_active_semi_oblivious(self, instance: Instance) -> bool:
        """Active iff ``result(σ, h) ⊄ I`` (Definition 3.1)."""
        return any(a not in instance for a in self.result())

    def is_active_restricted(self, instance: Instance) -> bool:
        """Active for the restricted chase iff no head extension exists.

        The restricted (standard) chase only fires a trigger when there
        is *no* homomorphism ``h' ⊇ h|fr(σ)`` from the head into the
        instance.  Delegates to the single shared implementation
        (:func:`repro.chase.restricted.head_extension_exists`) so the
        trigger API and the engines cannot drift; the verdict is a pure
        existence check, so the candidate exploration order underneath
        cannot change it.
        """
        from repro.chase.restricted import head_extension_exists

        frontier = self.tgd.frontier()
        substitution = self.substitution()
        seed: Substitution = {v: substitution[v] for v in frontier}
        return not head_extension_exists(self.tgd.head, instance, seed)

    def guard_image(self) -> Optional[Atom]:
        """The image of the rule's guard atom, if the rule is guarded.

        This is the parent node used when building the guarded chase
        forest (Section 5).
        """
        guard = self.tgd.guard()
        if guard is None:
            return None
        return apply_substitution(guard, self.substitution())
