"""The oblivious chase.

The oblivious chase is the most eager variant: a trigger ``(σ, h)`` is
identified by the *whole* body homomorphism, so two triggers that agree
on the frontier but differ elsewhere both fire and invent distinct
nulls.  It terminates on strictly fewer inputs than the semi-oblivious
chase and is included as an ablation baseline (the paper's bounds are
specific to the semi-oblivious variant).
"""

from __future__ import annotations

from typing import List, Optional

from repro.model.atoms import Atom
from repro.model.instance import Database, Instance
from repro.model.tgd import TGDSet
from repro.chase.engine import BaseChaseEngine, ChaseBudget, ChaseResult
from repro.chase.plan import CompiledRule
from repro.chase.trigger import Trigger


class ObliviousChase(BaseChaseEngine):
    """Oblivious chase engine: trigger identity is ``(σ, h)`` in full."""

    uses_frontier_identity = False
    supports_store_engine = True

    def trigger_key(self, trigger: Trigger):
        return trigger.full_key()

    def is_active(self, trigger: Trigger, instance: Instance) -> bool:
        # The oblivious chase fires every not-yet-fired trigger; the
        # applied-trigger memo in the driver provides the "not yet
        # fired" part, so activeness reduces to result containment with
        # the oblivious null labelling.
        return any(a not in instance for a in self.trigger_result(trigger))

    def trigger_result(self, trigger: Trigger) -> List[Atom]:
        full_binding = {name: term for name, term in trigger.homomorphism}
        return trigger.result(null_binding=full_binding)

    def evaluate(
        self, instance: Instance, rule: CompiledRule, binding
    ) -> Optional[List[Atom]]:
        return self._evaluate_by_containment(instance, rule, binding)

    store_evaluate = BaseChaseEngine._store_evaluate_by_containment


def oblivious_chase(
    database: Database,
    tgds: TGDSet,
    budget: Optional[ChaseBudget] = None,
    record_derivation: bool = True,
    compiled: bool = True,
    engine: Optional[str] = None,
    resume_from: Optional[object] = None,
    database_size: Optional[int] = None,
    probe: Optional[object] = None,
    profile: Optional[object] = None,
    round_hook: Optional[object] = None,
    checkpoint: Optional[object] = None,
) -> ChaseResult:
    """Run the oblivious chase of ``database`` w.r.t. ``tgds``.

    Supports pre-seeded fact stores and incremental ``resume_from``
    snapshots like :func:`~repro.chase.semi_oblivious.semi_oblivious_chase`
    (the oblivious result is unique too, so resumed and cold runs
    produce equal instances).
    """
    chase_engine = ObliviousChase(
        tgds, budget=budget, record_derivation=record_derivation, compiled=compiled,
        engine=engine, probe=probe, profile=profile, round_hook=round_hook,
    )
    return chase_engine.run(
        database,
        resume_from=resume_from,
        database_size=database_size,
        checkpoint=checkpoint,
    )
