"""Compiled rule plans over the interned fact store.

This is the :mod:`repro.chase.plan` pipeline recompiled against
:class:`~repro.model.store.FactStore`: the same greedy join orders, the
same per-atom bound-position templates, the same semi-naive delta
routing — but every slot array holds dense term ids, candidate
enumeration intersects posting lists of packed int tuples, and trigger
keys, null labels and result facts are all built by indexing id tuples.
No :class:`~repro.model.atoms.Atom` or
:class:`~repro.model.terms.Null` object is constructed on this path;
decoding happens only at API boundaries (derivation recording, the
final :class:`~repro.model.instance.Instance`).

Structure sharing with the term-level pipeline is deliberate: the atom
order comes from :func:`~repro.model.homomorphism._plan_order` and the
position templates from
:func:`~repro.model.homomorphism.classify_atom_positions`, so the two
compiled engines enumerate the same joins and the equivalence suite
can compare them homomorphism for homomorphism.
"""

from __future__ import annotations

from operator import itemgetter
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.homomorphism import _plan_order, classify_atom_positions
from repro.model.store import Fact, FactStore
from repro.model.terms import Term, Variable
from repro.model.tgd import TGD, TGDSet
from repro.chase.trigger import Trigger

#: A body homomorphism as term ids in the rule's sorted-variable order.
CanonicalIds = Tuple[int, ...]

#: Sentinel for an unbound slot (term ids are non-negative).
_UNSET_ID = -1

def _tuple_getter(indexes: Sequence[int]) -> Callable[[Sequence[int]], Tuple[int, ...]]:
    """A callable extracting ``tuple(seq[i] for i in indexes)``.

    Uses :func:`operator.itemgetter` (C speed) for the common case;
    the 0- and 1-index arities need wrapping because itemgetter then
    returns a scalar instead of a tuple.
    """
    if not indexes:
        return lambda seq: ()
    if len(indexes) == 1:
        index = indexes[0]
        return lambda seq: (seq[index],)
    return itemgetter(*indexes)


#: A per-atom evaluation step over the store: (pid, consts, lookups,
#: binds, checks) with positions 0-based and consts carrying term ids.
_StoreStep = Tuple[
    int,
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[int, int], ...],
]


class StoreBodyPlan:
    """A compiled backtracking join over id tuples.

    The id-space twin of :class:`~repro.model.homomorphism.BodyPlan`:
    fixed atom order, integer slots per variable, per-atom templates of
    constant/lookup/bind/check positions.  ``bound_first`` variables
    keep a slot even when they do not occur in the atoms (delta plans
    seed them from the forced fact and read them back out).
    """

    __slots__ = ("atoms", "ordered", "variables", "slot_of", "_steps")

    def __init__(
        self,
        atoms: Sequence[Atom],
        store: FactStore,
        bound_first: Sequence[Variable] = (),
        use_selectivity: bool = True,
    ) -> None:
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        bound = frozenset(bound_first)
        selectivity = None
        if use_selectivity:
            def selectivity(predicate: Predicate) -> int:
                return store.count(store.intern_predicate(predicate))
        self.ordered: Tuple[Atom, ...] = tuple(_plan_order(self.atoms, bound, selectivity))
        slot_of: Dict[Variable, int] = {}
        for v in sorted(bound, key=lambda v: v.name):
            slot_of[v] = len(slot_of)
        for a in self.ordered:
            for arg in a.args:
                if isinstance(arg, Variable) and arg not in slot_of:
                    slot_of[arg] = len(slot_of)
        self.slot_of = slot_of
        self.variables: Tuple[Variable, ...] = tuple(
            sorted(slot_of, key=lambda v: slot_of[v])
        )
        steps: List[_StoreStep] = []
        known: Set[Variable] = set(bound)
        for pattern in self.ordered:
            predicate, consts, lookups, binds, checks = classify_atom_positions(
                pattern, known, slot_of
            )
            steps.append(
                (
                    store.intern_predicate(predicate),
                    tuple((i, store.intern_term(t)) for i, t in consts),
                    lookups,
                    binds,
                    checks,
                )
            )
            known |= pattern.variables()
        self._steps: Tuple[_StoreStep, ...] = tuple(steps)

    def fresh_slots(self) -> List[int]:
        return [_UNSET_ID] * len(self.variables)

    def iter_ids(
        self, store: FactStore, slots: Optional[List[int]] = None
    ) -> Iterator[List[int]]:
        """Yield the live slot array for every body image in ``store``.

        The *same* list is yielded each time; copy out what you need
        before advancing.  ``store`` must not be mutated while the
        generator is live (candidates alias posting lists).
        """
        if slots is None:
            slots = [_UNSET_ID] * len(self.variables)
        return self._backtrack(store, slots, self._steps, 0)

    def _backtrack(
        self,
        store: FactStore,
        slots: List[int],
        steps: Tuple[_StoreStep, ...],
        index: int,
    ) -> Iterator[List[int]]:
        if index == len(steps):
            yield slots
            return
        pid, consts, lookups, binds, checks = steps[index]
        if consts or lookups:
            bound = list(consts)
            for position, slot in lookups:
                bound.append((position, slots[slot]))
            candidates = store.candidates(pid, bound)
        else:
            candidates = store.facts_of(pid)
        if not candidates:
            return
        next_index = index + 1
        for ids in candidates:
            for position, slot in binds:
                slots[slot] = ids[position]
            ok = True
            for position, slot in checks:
                if slots[slot] != ids[position]:
                    ok = False
                    break
            if ok:
                yield from self._backtrack(store, slots, steps, next_index)
        for _, slot in binds:
            slots[slot] = _UNSET_ID


class StoreDeltaPlan:
    """One body atom's semi-naive entry point in id space."""

    __slots__ = (
        "pid",
        "plan",
        "perm_get",
        "consts",
        "binds",
        "checks",
        "_direct_get",
        "_direct_checks",
        "_forced_checks",
        "_rest_pid",
        "_rest_probe",
        "_rest_const_probe",
        "_rest_checks",
        "_merge_get",
    )

    def __init__(self, pattern: Atom, rest: Sequence[Atom], rule: "StoreCompiledRule",
                 store: FactStore) -> None:
        self.pid = store.intern_predicate(pattern.predicate)
        self.plan = StoreBodyPlan(rest, store, bound_first=tuple(pattern.variables()))
        perm = tuple(self.plan.slot_of[v] for v in rule.sorted_variables)
        self.perm_get = _tuple_getter(perm)
        _, consts, _, self.binds, self.checks = classify_atom_positions(
            pattern, set(), self.plan.slot_of
        )
        self.consts: Tuple[Tuple[int, int], ...] = tuple(
            (i, store.intern_term(t)) for i, t in consts
        )
        # Single-atom bodies (every linear rule) skip the slot array
        # entirely: the canonical tuple is a pure permutation of the
        # forced fact, and repeated-variable checks compare positions
        # of the forced fact against each other.
        self._direct_get = None
        self._direct_checks: Tuple[Tuple[int, int], ...] = ()
        forced_position_of_slot = {slot: position for position, slot in self.binds}
        self._forced_checks = tuple(
            (position, forced_position_of_slot[slot]) for position, slot in self.checks
        )
        if not rest:
            self._direct_get = _tuple_getter(
                tuple(forced_position_of_slot[s] for s in perm)
            )
            self._direct_checks = self._forced_checks
        # Two-atom bodies (forced pattern + one rest atom) skip the
        # backtracking generator: the probe template binds the rest
        # atom's shared positions from the forced fact, and the
        # canonical tuple is one itemgetter over the concatenated
        # ``forced + candidate`` row.
        self._merge_get = None
        if len(rest) == 1:
            rest_pid, rest_consts, rest_lookups, rest_binds, rest_checks = (
                self.plan._steps[0]
            )
            arity = pattern.predicate.arity
            rest_position_of_slot = {slot: position for position, slot in rest_binds}
            self._rest_pid = rest_pid
            self._rest_const_probe = rest_consts
            self._rest_probe = tuple(
                (position, forced_position_of_slot[slot])
                for position, slot in rest_lookups
            )
            self._rest_checks = tuple(
                (position, rest_position_of_slot[slot])
                for position, slot in rest_checks
            )
            self._merge_get = _tuple_getter(
                tuple(
                    forced_position_of_slot[slot]
                    if slot in forced_position_of_slot
                    else arity + rest_position_of_slot[slot]
                    for slot in perm
                )
            )

    def canonicals(self, store: FactStore, forced: Tuple[int, ...]) -> Iterator[CanonicalIds]:
        """Canonical id bindings whose pattern maps onto ``forced``."""
        for position, tid in self.consts:
            if forced[position] != tid:
                return
        direct = self._direct_get
        if direct is not None:
            for position, first in self._direct_checks:
                if forced[position] != forced[first]:
                    return
            yield direct(forced)
            return
        slots = self.plan.fresh_slots()
        for position, slot in self.binds:
            slots[slot] = forced[position]
        for position, slot in self.checks:
            if slots[slot] != forced[position]:
                return
        perm_get = self.perm_get
        for bound in self.plan.iter_ids(store, slots):
            yield perm_get(bound)

    def canonical_list(
        self, store: FactStore, forced: Tuple[int, ...]
    ) -> List[CanonicalIds]:
        """:meth:`canonicals` as a list, through the two-atom fast path.

        For a body of the forced pattern plus one rest atom, the join
        is a single posting probe and the canonical tuples fall out of
        one itemgetter over ``forced + candidate`` — no slot array, no
        generator frames.  Larger bodies fall back to the general
        backtracking enumerator.
        """
        merge = self._merge_get
        if merge is None:
            return list(self.canonicals(store, forced))
        for position, tid in self.consts:
            if forced[position] != tid:
                return []
        for position, first in self._forced_checks:
            if forced[position] != forced[first]:
                return []
        bound = list(self._rest_const_probe)
        for position, forced_position in self._rest_probe:
            bound.append((position, forced[forced_position]))
        candidates = (
            store.candidates(self._rest_pid, bound)
            if bound
            else store.facts_of(self._rest_pid)
        )
        checks = self._rest_checks
        if not checks:
            return [merge(forced + candidate) for candidate in candidates]
        return [
            merge(forced + candidate)
            for candidate in candidates
            if all(candidate[a] == candidate[b] for a, b in checks)
        ]


class StoreCompiledRule:
    """Everything per-TGD the store-backed chase needs, computed once.

    A :data:`CanonicalIds` tuple lays out the body homomorphism's term
    ids in sorted-variable order, exactly like the term-level
    :class:`~repro.chase.plan.CompiledRule` canonical; trigger keys are
    ``(rule index, id tuple)``.  Null labels are parallel
    (names, ids) tuples whose name components are precomputed per rule
    and labelling mode, in the sorted order
    :func:`~repro.model.terms.make_null` would produce — so decoding a
    store null yields a :class:`~repro.model.terms.Null` *equal* to the
    legacy engine's.
    """

    __slots__ = (
        "tgd",
        "rule_id",
        "index",
        "body_plan",
        "delta_plans",
        "sorted_variables",
        "frontier_get",
        "has_existentials",
        "_var_names",
        "_frontier_index",
        "_existentials",
        "_head_template",
        "_head_simple",
        "_head_builders",
        "_body_perm_get",
        "_names_frontier",
        "_names_full",
        "_names_fired",
        "_fire_slot",
        "_head_plan",
        "_head_seed",
        "_head_single",
        "_store",
        "head_only",
        "head_single_fresh",
    )

    def __init__(self, tgd: TGD, store: FactStore, index: int) -> None:
        self.tgd = tgd
        self.rule_id = tgd.rule_id
        self.index = index
        self._store = store
        body = tgd.body
        frontier = tgd.frontier()
        self.sorted_variables: Tuple[Variable, ...] = tuple(
            sorted(tgd.body_variables(), key=lambda v: v.name)
        )
        self._var_names = tuple(v.name for v in self.sorted_variables)
        self._frontier_index = tuple(
            i for i, v in enumerate(self.sorted_variables) if v in frontier
        )
        self.frontier_get = _tuple_getter(self._frontier_index)
        self._existentials = tuple(
            v.name for v in sorted(tgd.existential_variables(), key=lambda v: v.name)
        )
        self.has_existentials = bool(self._existentials)

        self.body_plan = StoreBodyPlan(body, store)
        self._body_perm_get = _tuple_getter(
            tuple(self.body_plan.slot_of[v] for v in self.sorted_variables)
        )
        self.delta_plans: List[StoreDeltaPlan] = [
            StoreDeltaPlan(pattern, body[:i] + body[i + 1 :], self, store)
            for i, pattern in enumerate(body)
        ]

        # Head template: per head atom its pid plus one spec per
        # argument — a canonical index for a frontier variable, or
        # ``-1 - k`` for the k-th existential variable.
        position_of = {v: i for i, v in enumerate(self.sorted_variables)}
        existential_slot = {name: k for k, name in enumerate(self._existentials)}
        self._head_template: Tuple[Tuple[int, Tuple[int, ...]], ...] = tuple(
            (
                store.intern_predicate(a.predicate),
                tuple(
                    position_of[arg]
                    if arg in position_of
                    else -1 - existential_slot[arg.name]
                    for arg in a.args
                ),
            )
            for a in tgd.head
        )
        # Precompiled head builders: every head atom is one itemgetter
        # over the *combined* row ``canonical + nulls`` — a spec ``-1-k``
        # (the k-th existential) maps past the canonical prefix, so a
        # pure-frontier atom and an existential atom build identically
        # at C speed.  Rules without existentials additionally keep the
        # canonical-only getters (``_head_simple``) and skip null
        # labelling entirely.
        variable_count = len(self.sorted_variables)
        self._head_builders = tuple(
            (
                pid,
                _tuple_getter(
                    tuple(
                        spec if spec >= 0 else variable_count + (-1 - spec)
                        for spec in template
                    )
                ),
            )
            for pid, template in self._head_template
        )
        self._head_simple = self._head_builders if not self._existentials else None
        # The dominant rule shape — one head atom, no existentials — as
        # a bare (pid, getter) pair: the columnar driver inlines its
        # containment evaluation without building a result list.
        self.head_only = (
            self._head_simple[0]
            if self._head_simple is not None and len(self._head_simple) == 1
            else None
        )
        # The other dominant shape: one head atom *with* existentials
        # (every SL/L rule).  single_fresh_fact builds its one result
        # fact without list machinery.
        self.head_single_fresh = (
            self._head_builders[0]
            if len(tgd.head) == 1 and self._existentials
            else None
        )

        # Null label name tuples per labelling mode, pre-sorted the way
        # make_null sorts binding items.
        frontier_names = tuple(self._var_names[i] for i in self._frontier_index)
        self._names_frontier = frontier_names
        self._names_full = self._var_names
        fired = sorted(frontier_names + ("__fire__",))
        self._names_fired = tuple(fired)
        self._fire_slot = fired.index("__fire__")

        # Head-satisfaction plan (restricted chase): join the head into
        # the store with the frontier seeded from the canonical tuple.
        # Compiled lazily — only multi-atom heads under the restricted
        # variant ever run it, and tiny workloads are dominated by
        # per-run compilation otherwise.
        self._head_plan = None
        self._head_seed: Tuple[Tuple[int, int], ...] = ()
        # Single-atom heads (the overwhelmingly common shape) shortcut
        # the plan entirely: satisfaction is one posting-list probe
        # (plus equality checks when an existential repeats in the atom).
        self._head_single = None
        if len(tgd.head) == 1:
            head_atom = tgd.head[0]
            bound_template: List[Tuple[int, int]] = []
            first_of_existential: Dict[str, int] = {}
            repeat_checks: List[Tuple[int, int]] = []
            for position, arg in enumerate(head_atom.args):
                canonical_index = position_of.get(arg)
                if canonical_index is not None:
                    bound_template.append((position, canonical_index))
                else:
                    seen_at = first_of_existential.get(arg.name)
                    if seen_at is None:
                        first_of_existential[arg.name] = position
                    else:
                        repeat_checks.append((seen_at, position))
            self._head_single = (
                store.intern_predicate(head_atom.predicate),
                tuple(position for position, _ in bound_template),
                _tuple_getter(tuple(index for _, index in bound_template)),
                tuple(bound_template),
                tuple(repeat_checks),
            )

    # -- trigger identity ---------------------------------------------------

    def frontier_ids(self, canonical: CanonicalIds) -> CanonicalIds:
        """``h|fr(σ)`` as an id tuple (semi-oblivious/restricted key)."""
        return self.frontier_get(canonical)

    # -- results ------------------------------------------------------------

    def result_facts(
        self, store: FactStore, canonical: CanonicalIds, full_labels: bool = False
    ) -> List[Fact]:
        """``result(σ, h)`` as packed facts, no atom materialisation."""
        simple = self._head_simple
        if simple is not None:
            return [(pid, getter(canonical)) for pid, getter in simple]
        if full_labels:
            names, label_ids = self._names_full, canonical
        else:
            names = self._names_frontier
            label_ids = self.frontier_get(canonical)
        return self._build_facts(store, canonical, names, label_ids)

    def single_fresh_fact(
        self, store: FactStore, canonical: CanonicalIds, full_labels: bool = False
    ) -> Fact:
        """The one result fact of a single-head existential rule.

        The flattened twin of :meth:`result_facts` for the
        ``head_single_fresh`` shape, used by the columnar driver: null
        interning plus one template fill, no intermediate lists.
        """
        if full_labels:
            names, label_ids = self._names_full, canonical
        else:
            names = self._names_frontier
            label_ids = self.frontier_get(canonical)
        rule_id = self.rule_id
        intern_null = store.intern_null
        combined = canonical + tuple(
            intern_null(rule_id, name, names, label_ids)
            for name in self._existentials
        )
        pid, getter = self.head_single_fresh
        return pid, getter(combined)

    def result_facts_fired(
        self, store: FactStore, canonical: CanonicalIds, fire_tid: int
    ) -> List[Fact]:
        """Restricted-chase result: frontier labels plus the fire mark."""
        simple = self._head_simple
        if simple is not None:
            return [(pid, getter(canonical)) for pid, getter in simple]
        label = list(self.frontier_get(canonical))
        label.insert(self._fire_slot, fire_tid)
        return self._build_facts(store, canonical, self._names_fired, tuple(label))

    def _build_facts(
        self,
        store: FactStore,
        canonical: CanonicalIds,
        names: Tuple[str, ...],
        label_ids: Tuple[int, ...],
    ) -> List[Fact]:
        rule_id = self.rule_id
        intern_null = store.intern_null
        combined = canonical + tuple(
            intern_null(rule_id, name, names, label_ids)
            for name in self._existentials
        )
        return [(pid, getter(combined)) for pid, getter in self._head_builders]

    # -- restricted activeness ----------------------------------------------

    def head_satisfied(self, store: FactStore, canonical: CanonicalIds) -> bool:
        """True iff some ``h' ⊇ h|fr(σ)`` maps the head into the store.

        This is the restricted chase's activeness test run entirely on
        posting lists: a single-atom head is one candidates() probe
        seeded with frontier ids; multi-atom heads run the compiled
        head plan and the first witness wins.
        """
        single = self._head_single
        if single is not None:
            pid, signature, value_get, bound_template, repeat_checks = single
            if not repeat_checks:
                # Existence only: on the arrays layout this is one
                # lookup in the (pid, signature) projection index.
                return store.has_projection(pid, signature, value_get(canonical))
            bound = [(position, canonical[i]) for position, i in bound_template]
            for ids in store.candidates(pid, bound):
                if all(ids[a] == ids[b] for a, b in repeat_checks):
                    return True
            return False
        if self._head_plan is None:
            frontier = self.tgd.frontier()
            self._head_plan = StoreBodyPlan(
                self.tgd.head,
                self._store,
                bound_first=tuple(sorted(frontier, key=lambda v: v.name)),
            )
            slot_of = self._head_plan.slot_of
            self._head_seed = tuple(
                (slot_of[v], i)
                for i, v in enumerate(self.sorted_variables)
                if v in frontier
            )
        slots = self._head_plan.fresh_slots()
        for slot, i in self._head_seed:
            slots[slot] = canonical[i]
        for _ in self._head_plan.iter_ids(store, slots):
            return True
        return False

    # -- decoding (API boundary) ---------------------------------------------

    def make_trigger(self, store: FactStore, canonical: CanonicalIds) -> Trigger:
        """Materialise the :class:`Trigger` for derivation recording."""
        return Trigger(
            tgd=self.tgd,
            homomorphism=tuple(
                (name, store.term_of_id(tid))
                for name, tid in zip(self._var_names, canonical)
            ),
        )

    # -- enumeration ---------------------------------------------------------

    def initial_canonicals(self, store: FactStore) -> Iterator[CanonicalIds]:
        perm_get = self._body_perm_get
        for bound in self.body_plan.iter_ids(store):
            yield perm_get(bound)


#: A pending trigger: (rule, canonical ids, applied-memo key).
PendingTrigger = Tuple[StoreCompiledRule, CanonicalIds, Tuple[int, CanonicalIds]]


class StoreTriggerPipeline:
    """Relevance-routed trigger enumeration over the fact store.

    The id-space twin of :class:`~repro.chase.plan.TriggerPipeline`:
    one :class:`StoreCompiledRule` per TGD, a ``pid -> [(rule, body
    index)]`` relevance map, and per-round dedup of repeated body
    images by their compact ``(rule index, id tuple)`` key.  Unlike the
    term pipeline it hands the driver fully keyed *pending lists*
    rather than a generator: the round's triggers are materialised
    before application anyway, and building them in one flat loop
    avoids per-trigger generator resumptions on the hottest path.
    """

    def __init__(
        self,
        tgds: TGDSet,
        store: FactStore,
        compile_seconds: Optional[List[float]] = None,
    ) -> None:
        if compile_seconds is None:
            self.rules: List[StoreCompiledRule] = [
                StoreCompiledRule(t, store, index) for index, t in enumerate(tgds)
            ]
        else:
            # Profiled construction: per-rule compile wall time lands in
            # the caller's rule-indexed list.
            self.rules = []
            for index, t in enumerate(tgds):
                compile_start = perf_counter()
                self.rules.append(StoreCompiledRule(t, store, index))
                compile_seconds[index] += perf_counter() - compile_start
        self.relevance: Dict[int, List[Tuple[StoreCompiledRule, int]]] = {}
        self._delta_entries: List[Tuple[StoreCompiledRule, int, int]] = []
        for rule in self.rules:
            for index, atom in enumerate(rule.tgd.body):
                pid = store.intern_predicate(atom.predicate)
                self.relevance.setdefault(pid, []).append((rule, index))
                self._delta_entries.append((rule, index, pid))

    def initial_pending(
        self,
        store: FactStore,
        uses_frontier: bool,
        rule_seconds: Optional[List[float]] = None,
    ) -> List[PendingTrigger]:
        """All body homomorphisms into the store, keyed (round one).

        ``rule_seconds`` (rule-indexed, from the profiler) receives each
        rule's enumeration wall time; ``None`` skips all clock reads.
        """
        pending: List[PendingTrigger] = []
        append = pending.append
        for rule in self.rules:
            rule_index = rule.index
            key_get = rule.frontier_get if uses_frontier else None
            if rule_seconds is not None:
                enum_start = perf_counter()
            for canonical in rule.initial_canonicals(store):
                key = (rule_index, key_get(canonical) if key_get else canonical)
                append((rule, canonical, key))
            if rule_seconds is not None:
                rule_seconds[rule_index] += perf_counter() - enum_start
        return pending

    def delta_pending(
        self,
        store: FactStore,
        delta: Sequence[Fact],
        uses_frontier: bool,
        rule_seconds: Optional[List[float]] = None,
    ) -> List[PendingTrigger]:
        """Keyed triggers whose body image uses at least one delta fact.

        A rule with a single-atom body cannot produce the same
        canonical from two distinct forced facts (the canonical is a
        permutation of the fact), and it has no second delta entry to
        collide with — such entries skip the round-local ``seen`` set
        entirely.

        ``rule_seconds`` attributes enumeration time per rule.  The
        entry walk is rule-major (every rule's body atoms are
        consecutive), so the clock is read only where the owning rule
        changes, never per forced fact or trigger.
        """
        by_pid: Dict[int, List[Tuple[int, ...]]] = {}
        relevance = self.relevance
        for pid, ids in delta:
            if pid in relevance:
                by_pid.setdefault(pid, []).append(ids)
        pending: List[PendingTrigger] = []
        if not by_pid:
            return pending
        append = pending.append
        seen: Set[Tuple[int, CanonicalIds]] = set()
        seen_add = seen.add
        seg_index = -1
        # The first segment opens at function entry, not at the first
        # boundary: per-call prologue (local binds, the seen set) lands
        # on the first rule instead of vanishing from the attribution —
        # µs of noise per call, but rounds can number in the hundreds
        # of thousands.
        seg_start = perf_counter() if rule_seconds is not None else 0.0
        for rule, index, pid in self._delta_entries:
            if rule_seconds is not None and rule.index != seg_index:
                if seg_index >= 0:
                    now = perf_counter()
                    rule_seconds[seg_index] += now - seg_start
                    seg_start = now
                seg_index = rule.index
            forced_facts = by_pid.get(pid)
            if not forced_facts:
                continue
            delta_plan = rule.delta_plans[index]
            rule_index = rule.index
            key_get = rule.frontier_get if uses_frontier else None
            dedup = len(rule.delta_plans) > 1
            direct = delta_plan._direct_get
            if direct is not None and not dedup:
                # Linear rule: one delta entry, injective pattern match.
                direct_checks = delta_plan._direct_checks
                consts = delta_plan.consts
                for forced in forced_facts:
                    ok = True
                    for position, tid in consts:
                        if forced[position] != tid:
                            ok = False
                            break
                    if ok:
                        for position, first in direct_checks:
                            if forced[position] != forced[first]:
                                ok = False
                                break
                    if not ok:
                        continue
                    canonical = direct(forced)
                    key = (rule_index, key_get(canonical) if key_get else canonical)
                    append((rule, canonical, key))
                continue
            for forced in forced_facts:
                for canonical in delta_plan.canonicals(store, forced):
                    dedup_key = (rule_index, canonical)
                    if dedup_key in seen:
                        continue
                    seen_add(dedup_key)
                    key = (rule_index, key_get(canonical) if key_get else canonical)
                    append((rule, canonical, key))
        if rule_seconds is not None and seg_index >= 0:
            rule_seconds[seg_index] += perf_counter() - seg_start
        return pending

    # (classic delta_pending above; columnar row-mark twin below)

    def delta_pending_rows(
        self,
        store: FactStore,
        marks: Sequence[int],
        uses_frontier: bool,
        rule_seconds: Optional[List[float]] = None,
    ) -> List[PendingTrigger]:
        """:meth:`delta_pending` over columnar row marks (arrays layout).

        The delta is not a fact list but the row ranges past ``marks``
        (the per-predicate row counts captured before the previous
        round applied): new facts simply occupy the tail of their row
        table, so the per-round regrouping by predicate disappears.
        The enumerated trigger set and order match
        :meth:`delta_pending` exactly — per (rule, body index) in
        registration order, forced facts in insertion order — and the
        linear-rule fast path builds its pending entries with a single
        C-level ``map`` over the row slice.
        """
        pending: List[PendingTrigger] = []
        append = pending.append
        seen: Set[Tuple[int, CanonicalIds]] = set()
        seen_add = seen.add
        rows_since = store.rows_since
        seg_index = -1
        # First segment opens at entry (see delta_pending): the per-call
        # prologue is charged to the first rule.
        seg_start = perf_counter() if rule_seconds is not None else 0.0
        for rule, index, pid in self._delta_entries:
            if rule_seconds is not None and rule.index != seg_index:
                if seg_index >= 0:
                    now = perf_counter()
                    rule_seconds[seg_index] += now - seg_start
                    seg_start = now
                seg_index = rule.index
            forced_facts = rows_since(pid, marks[pid])
            if not forced_facts:
                continue
            delta_plan = rule.delta_plans[index]
            rule_index = rule.index
            key_get = rule.frontier_get if uses_frontier else None
            dedup = len(rule.delta_plans) > 1
            direct = delta_plan._direct_get
            if direct is not None and not dedup:
                # Linear rule: one delta entry, injective pattern match.
                direct_checks = delta_plan._direct_checks
                consts = delta_plan.consts
                if not consts and not direct_checks:
                    if key_get is None:
                        pending.extend(
                            [
                                (rule, canonical, (rule_index, canonical))
                                for canonical in map(direct, forced_facts)
                            ]
                        )
                    else:
                        pending.extend(
                            [
                                (rule, canonical, (rule_index, key_get(canonical)))
                                for canonical in map(direct, forced_facts)
                            ]
                        )
                    continue
                for forced in forced_facts:
                    ok = True
                    for position, tid in consts:
                        if forced[position] != tid:
                            ok = False
                            break
                    if ok:
                        for position, first in direct_checks:
                            if forced[position] != forced[first]:
                                ok = False
                                break
                    if not ok:
                        continue
                    canonical = direct(forced)
                    key = (rule_index, key_get(canonical) if key_get else canonical)
                    append((rule, canonical, key))
                continue
            for forced in forced_facts:
                for canonical in delta_plan.canonical_list(store, forced):
                    dedup_key = (rule_index, canonical)
                    if dedup_key in seen:
                        continue
                    seen_add(dedup_key)
                    key = (rule_index, key_get(canonical) if key_get else canonical)
                    append((rule, canonical, key))
        if rule_seconds is not None and seg_index >= 0:
            rule_seconds[seg_index] += perf_counter() - seg_start
        return pending
