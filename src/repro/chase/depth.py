"""Term and atom depth (Definition 4.3) and ``maxdepth(D, Σ)``."""

from __future__ import annotations

from typing import Optional

from repro.model.instance import Database, Instance
from repro.model.tgd import TGDSet
from repro.chase.engine import ChaseBudget, ChaseResult
from repro.chase.semi_oblivious import semi_oblivious_chase


def instance_max_depth(instance: Instance) -> int:
    """Maximum depth over all terms of the instance's active domain."""
    return instance.max_depth()


def max_depth(
    database: Database,
    tgds: TGDSet,
    budget: Optional[ChaseBudget] = None,
) -> Optional[int]:
    """``maxdepth(D, Σ)`` computed by materialising the semi-oblivious chase.

    Returns ``None`` when the chase did not terminate within budget
    (the paper writes ``maxdepth(D, Σ) = ∞`` in that case).
    """
    result = semi_oblivious_chase(database, tgds, budget=budget, record_derivation=False)
    if not result.terminated:
        return None
    return result.max_depth
