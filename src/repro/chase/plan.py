"""Compiled rule plans and the incremental trigger pipeline.

The chase driver used to rebuild everything per round: re-derive the
body atom order on every ``find_homomorphisms`` call, copy a binding
dict per candidate match, re-sort every trigger's homomorphism items,
and rescan every (rule, body-atom) pair against the round's delta.
This module compiles each TGD once per run into a :class:`CompiledRule`
— body join plan, one delta plan per body atom, frontier/variable
templates for key and result construction — and routes delta atoms
through a predicate-relevance map so only the plans that can actually
consume a new atom are evaluated.

Bindings travel through the pipeline as *canonical tuples*: the body
homomorphism's terms laid out in the rule's sorted-variable order.
Trigger keys are then ``(rule_id, term_tuple)`` — compact, built by
tuple indexing without per-trigger sorting — and triggers, null labels
and result atoms are all constructed from the same tuple via
precompiled index templates.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.homomorphism import _UNSET, BodyPlan, classify_atom_positions
from repro.model.instance import Instance
from repro.model.tgd import TGD, TGDSet
from repro.model.terms import Null, Term, Variable
from repro.chase.trigger import Trigger

#: A body homomorphism as terms in the rule's sorted-variable order.
Canonical = Tuple[Term, ...]

#: ``(rule_id, (term, ...))`` — a trigger identity without name strings.
TriggerKey = Tuple[str, Canonical]


class _DeltaPlan:
    """One body atom's semi-naive entry point.

    Matches a freshly derived atom against the body atom's pattern
    directly into the rest-plan's slot array, then joins the remaining
    body atoms around it.
    """

    __slots__ = ("predicate", "plan", "perm", "consts", "binds", "checks")

    def __init__(self, pattern: Atom, rest: Sequence[Atom], rule: "CompiledRule",
                 selectivity: Optional[Callable[[Predicate], int]]) -> None:
        self.predicate = pattern.predicate
        self.plan = BodyPlan(rest, bound_first=pattern.variables(), selectivity=selectivity)
        self.perm: Tuple[int, ...] = tuple(
            self.plan.slot_of[v] for v in rule.sorted_variables
        )
        # No variable is bound before the forced atom is matched, so the
        # classification yields no lookup positions.
        _, self.consts, _, self.binds, self.checks = classify_atom_positions(
            pattern, set(), self.plan.slot_of
        )

    def canonicals(self, instance: Instance, forced: Atom) -> Iterator[Canonical]:
        """Canonical body bindings whose pattern maps onto ``forced``."""
        if forced.predicate != self.predicate:
            return
        args = forced.args
        for position, term in self.consts:
            if args[position] != term:
                return
        slots: List = [_UNSET] * len(self.plan.variables)
        for position, slot in self.binds:
            slots[slot] = args[position]
        for position, slot in self.checks:
            if slots[slot] != args[position]:
                return
        perm = self.perm
        for bound in self.plan.iter_bindings(instance, slots):
            yield tuple(bound[p] for p in perm)


class CompiledRule:
    """Everything per-TGD the chase needs, computed once.

    Attributes
    ----------
    body_plan:
        Compiled join plan over the full body (used in the first round).
    delta_plans:
        One :class:`_DeltaPlan` per body atom (the semi-naive delta
        step).
    sorted_variables:
        The body variables in sorted-name order; a :data:`Canonical`
        tuple lays its terms out in exactly this order.
    frontier_variables:
        ``fr(σ)`` as a frozenset, for fast restriction of bindings.
    """

    __slots__ = (
        "tgd",
        "rule_id",
        "index",
        "body_plan",
        "delta_plans",
        "sorted_variables",
        "frontier_variables",
        "_body_perm",
        "_var_names",
        "_frontier_index",
        "_frontier_var_index",
        "_frontier_name_index",
        "_existentials",
        "_head_template",
    )

    def __init__(
        self,
        tgd: TGD,
        selectivity: Optional[Callable[[Predicate], int]] = None,
        index: int = -1,
    ) -> None:
        self.tgd = tgd
        self.rule_id = tgd.rule_id
        #: Position in the pipeline's rule list (profiler bucket index);
        #: -1 for rules compiled outside a pipeline.
        self.index = index
        body = tgd.body
        frontier = tgd.frontier()
        self.sorted_variables: Tuple[Variable, ...] = tuple(
            sorted(tgd.body_variables(), key=lambda v: v.name)
        )
        self.frontier_variables = frozenset(frontier)
        self._var_names = tuple(v.name for v in self.sorted_variables)
        self._frontier_index = tuple(
            i for i, v in enumerate(self.sorted_variables) if v in self.frontier_variables
        )
        self._frontier_var_index = tuple(
            (v, i) for i, v in enumerate(self.sorted_variables) if v in self.frontier_variables
        )
        self._frontier_name_index = tuple(
            (v.name, i) for v, i in self._frontier_var_index
        )
        self._existentials = tuple(
            sorted(tgd.existential_variables(), key=lambda v: v.name)
        )

        self.body_plan = BodyPlan(body, selectivity=selectivity)
        self._body_perm = tuple(self.body_plan.slot_of[v] for v in self.sorted_variables)
        self.delta_plans: List[_DeltaPlan] = [
            _DeltaPlan(pattern, body[:index] + body[index + 1 :], self, selectivity)
            for index, pattern in enumerate(body)
        ]

        # Head construction template: per head atom, its predicate and
        # one entry per argument — the canonical index for a frontier
        # variable, or the existential variable itself.
        position_of = {v: i for i, v in enumerate(self.sorted_variables)}
        self._head_template = tuple(
            (a.predicate, tuple(position_of.get(arg, arg) for arg in a.args))
            for a in tgd.head
        )

    # -- trigger identity ---------------------------------------------------

    def full_key(self, canonical: Canonical) -> TriggerKey:
        """Identity of the full body homomorphism (oblivious chase)."""
        return (self.rule_id, canonical)

    def frontier_key(self, canonical: Canonical) -> TriggerKey:
        """Identity of ``h|fr(σ)`` (semi-oblivious and restricted chase)."""
        return (self.rule_id, tuple(canonical[i] for i in self._frontier_index))

    # -- trigger construction ----------------------------------------------

    def make_trigger(self, canonical: Canonical) -> Trigger:
        """Build a :class:`Trigger` without re-sorting the binding."""
        return Trigger(
            tgd=self.tgd,
            homomorphism=tuple(zip(self._var_names, canonical)),
        )

    def frontier_binding(self, canonical: Canonical) -> Dict[Variable, Term]:
        """``h|fr(σ)`` as a substitution (seed for head-plan searches)."""
        return {v: canonical[i] for v, i in self._frontier_var_index}

    # -- results ------------------------------------------------------------

    def result_atoms(self, canonical: Canonical, full_labels: bool = False) -> List[Atom]:
        """``result(σ, h)`` built from the precompiled head template.

        ``full_labels`` switches the null labelling from the frontier
        binding (semi-oblivious) to the whole body binding (oblivious).
        Produces atoms equal to :meth:`Trigger.result`.
        """
        if full_labels:
            label_items = tuple(zip(self._var_names, canonical))
        else:
            label_items = tuple(
                (name, canonical[i]) for name, i in self._frontier_name_index
            )
        nulls = {
            v: Null(rule_id=self.rule_id, variable=v.name, binding=label_items)
            for v in self._existentials
        }
        return [
            Atom(
                predicate,
                tuple(
                    canonical[spec] if type(spec) is int else nulls[spec]
                    for spec in template
                ),
            )
            for predicate, template in self._head_template
        ]

    # -- enumeration ---------------------------------------------------------

    def initial_canonicals(self, instance: Instance) -> Iterator[Canonical]:
        """All body homomorphisms into ``instance`` (round one)."""
        perm = self._body_perm
        for bound in self.body_plan.iter_bindings(instance):
            yield tuple(bound[p] for p in perm)

    def delta_canonicals(
        self, instance: Instance, index: int, forced: Atom
    ) -> Iterator[Canonical]:
        """Body homomorphisms whose ``index``-th atom maps onto ``forced``."""
        return self.delta_plans[index].canonicals(instance, forced)


class TriggerPipeline:
    """Incremental, relevance-routed trigger enumeration.

    Compiled once per chase run, the pipeline holds one
    :class:`CompiledRule` per TGD and a predicate-relevance map
    ``predicate -> [(rule, body_index)]``.  The first round enumerates
    every body plan; every later round routes the delta atoms straight
    to the (rule, body-atom) plans that can consume them, deduplicating
    repeated body homomorphisms within the round by their compact full
    key.
    """

    def __init__(
        self,
        tgds: TGDSet,
        selectivity: Optional[Callable[[Predicate], int]] = None,
        compile_seconds: Optional[List[float]] = None,
    ) -> None:
        if compile_seconds is None:
            self.rules: List[CompiledRule] = [
                CompiledRule(t, selectivity, i) for i, t in enumerate(tgds)
            ]
        else:
            # Profiled construction: per-rule compile wall time lands in
            # the caller's rule-indexed list.
            self.rules = []
            for i, t in enumerate(tgds):
                compile_start = perf_counter()
                self.rules.append(CompiledRule(t, selectivity, i))
                compile_seconds[i] += perf_counter() - compile_start
        self.relevance: Dict[Predicate, List[Tuple[CompiledRule, int]]] = {}
        # Flat (rule, index, predicate) list in rule-major order: delta
        # rounds walk it so trigger order matches the classic rescan.
        self._delta_entries: List[Tuple[CompiledRule, int, Predicate]] = []
        for rule in self.rules:
            for index, atom in enumerate(rule.tgd.body):
                self.relevance.setdefault(atom.predicate, []).append((rule, index))
                self._delta_entries.append((rule, index, atom.predicate))

    def initial_triggers(
        self, instance: Instance
    ) -> Iterator[Tuple[CompiledRule, Canonical]]:
        """All body homomorphisms into ``instance`` (round one)."""
        for rule in self.rules:
            for canonical in rule.initial_canonicals(instance):
                yield rule, canonical

    def delta_triggers(
        self, instance: Instance, delta: Sequence[Atom]
    ) -> Iterator[Tuple[CompiledRule, Canonical]]:
        """Triggers whose body image uses at least one atom of ``delta``."""
        by_predicate: Dict[Predicate, List[Atom]] = {}
        relevance = self.relevance
        for a in delta:
            if a.predicate in relevance:
                by_predicate.setdefault(a.predicate, []).append(a)
        if not by_predicate:
            return
        seen: Set[TriggerKey] = set()
        for rule, index, predicate in self._delta_entries:
            forced_atoms = by_predicate.get(predicate)
            if not forced_atoms:
                continue
            delta_plan = rule.delta_plans[index]
            rule_id = rule.rule_id
            for forced in forced_atoms:
                for canonical in delta_plan.canonicals(instance, forced):
                    key = (rule_id, canonical)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield rule, canonical
