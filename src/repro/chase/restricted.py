"""The restricted (standard) chase.

The restricted chase only fires a trigger when the head is not already
satisfied by *some* extension of the frontier binding, so it produces
the smallest materialisation of the three variants.  Its result depends
on the order of trigger applications; the engine below applies all
active triggers level by level, which yields one particular fair
derivation.  The paper's introduction recommends it for RAM-based
implementations; we include it as a comparison baseline.

All engines decide activeness through one implementation per data
plane: :func:`head_extension_exists` for term-level instances (shared
by :meth:`Trigger.is_active_restricted` and the plans engine, so the
two cannot drift) and
:meth:`~repro.chase.store_plan.StoreCompiledRule.head_satisfied` on the
store path, which the equivalence suite pins to the same verdicts.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.model.atoms import Atom
from repro.model.homomorphism import Substitution, extend_homomorphism
from repro.model.instance import Database, Instance
from repro.model.terms import Constant
from repro.model.tgd import TGDSet
from repro.chase.engine import BaseChaseEngine, ChaseBudget, ChaseResult
from repro.chase.plan import CompiledRule
from repro.chase.trigger import Trigger


def head_extension_exists(
    head_atoms: Sequence[Atom], instance: Instance, frontier_binding: Substitution
) -> bool:
    """True iff some ``h' ⊇ h|fr(σ)`` maps the head into ``instance``.

    The single term-level implementation of the restricted chase's
    head-satisfaction test (the negation of activeness), used by both
    the trigger API and the plans engine.  Runs on a compiled head plan
    cached per (head, frontier), so repeated checks of the same rule
    reuse one plan.
    """
    return extend_homomorphism(head_atoms, instance, frontier_binding) is not None


class RestrictedChase(BaseChaseEngine):
    """Restricted chase engine: fire only when the head is not yet satisfied."""

    uses_frontier_identity = True
    supports_store_engine = True

    def __init__(self, tgds: TGDSet, budget: Optional[ChaseBudget] = None,
                 record_derivation: bool = True, compiled: bool = True,
                 engine: Optional[str] = None, probe=None, profile=None,
                 round_hook=None) -> None:
        super().__init__(tgds, budget=budget, record_derivation=record_derivation,
                         compiled=compiled, engine=engine, probe=probe,
                         profile=profile, round_hook=round_hook)
        self._fire_counter = itertools.count()
        self._satisfied_memo: set = set()

    def trigger_key(self, trigger: Trigger):
        # Like the semi-oblivious chase, a restricted-chase trigger never
        # needs to fire twice for the same frontier binding: after the
        # first application the head is satisfied by the invented nulls.
        return trigger.frontier_key()

    def is_active(self, trigger: Trigger, instance: Instance) -> bool:
        return trigger.is_active_restricted(instance)

    def trigger_result(self, trigger: Trigger) -> List[Atom]:
        # Nulls are fresh per application; a per-engine counter entry is
        # mixed into the label so distinct applications yield distinct
        # nulls while the depth bookkeeping (driven by the frontier
        # images in the binding) stays correct.
        binding = dict(trigger.frontier_binding())
        binding["__fire__"] = Constant(f"fire{next(self._fire_counter)}")
        return trigger.result(null_binding=binding)

    def evaluate(
        self, instance: Instance, rule: CompiledRule, binding
    ) -> Optional[List[Atom]]:
        if head_extension_exists(rule.tgd.head, instance, rule.frontier_binding(binding)):
            return None
        return self.trigger_result(rule.make_trigger(binding))

    # -- store engine --------------------------------------------------------

    def _begin_store_run(self) -> None:
        self._satisfied_memo = set()

    def store_evaluate(self, store, rule, canonical, key):
        # Head satisfaction is monotone (the chase only adds facts), so
        # a positive verdict is memoised for the rest of the run under
        # the trigger's frontier key.  The driver's applied-key memo
        # already covers evaluated triggers; this memo additionally
        # keeps triggers that stay pending (depth truncation) from
        # re-running the head join.
        memo = self._satisfied_memo
        if key in memo:
            return None
        if rule.head_satisfied(store, canonical):
            memo.add(key)
            return None
        # The counter ticks for every fired trigger — full rules
        # included — to keep null numbering aligned with the legacy
        # engine; the constant itself is only interned when a null will
        # actually carry it.
        fire = next(self._fire_counter)
        fire_tid = (
            store.intern_term(Constant(f"fire{fire}")) if rule.has_existentials else -1
        )
        return rule.result_facts_fired(store, canonical, fire_tid)


def restricted_chase(
    database: Database,
    tgds: TGDSet,
    budget: Optional[ChaseBudget] = None,
    record_derivation: bool = True,
    compiled: bool = True,
    engine: Optional[str] = None,
    resume_from: Optional[object] = None,
    database_size: Optional[int] = None,
    probe: Optional[object] = None,
    profile: Optional[object] = None,
    round_hook: Optional[object] = None,
    checkpoint: Optional[object] = None,
) -> ChaseResult:
    """Run one fair restricted-chase derivation of ``database`` w.r.t. ``tgds``.

    ``resume_from`` continues a terminated restricted chase after a
    database delta.  Head satisfaction is monotone, so the resumed run
    is itself a valid fair restricted-chase derivation of the enlarged
    database — but because the restricted chase is order-dependent in
    general, it need not equal the cold derivation atom for atom; on
    order-invariant programs (full TGDs, the ``restricted_heavy``
    family) the two agree up to fire numbering
    (:func:`~repro.model.serialization.fire_invariant_instance_key`).
    """
    if checkpoint is not None:
        # A checkpoint cannot restore the per-run fire counter that
        # numbers restricted-chase nulls, so a resumed run would reuse
        # labels and silently merge facts.  Restricted retries run cold.
        raise ValueError("the restricted chase does not support checkpoint resume")
    chase_engine = RestrictedChase(
        tgds, budget=budget, record_derivation=record_derivation, compiled=compiled,
        engine=engine, probe=probe, profile=profile, round_hook=round_hook,
    )
    return chase_engine.run(database, resume_from=resume_from, database_size=database_size)
