"""The restricted (standard) chase.

The restricted chase only fires a trigger when the head is not already
satisfied by *some* extension of the frontier binding, so it produces
the smallest materialisation of the three variants.  Its result depends
on the order of trigger applications; the engine below applies all
active triggers level by level, which yields one particular fair
derivation.  The paper's introduction recommends it for RAM-based
implementations; we include it as a comparison baseline.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.model.atoms import Atom
from repro.model.homomorphism import extend_homomorphism
from repro.model.instance import Database, Instance
from repro.model.terms import Constant
from repro.model.tgd import TGDSet
from repro.chase.engine import BaseChaseEngine, ChaseBudget, ChaseResult
from repro.chase.plan import CompiledRule
from repro.chase.trigger import Trigger


class RestrictedChase(BaseChaseEngine):
    """Restricted chase engine: fire only when the head is not yet satisfied."""

    uses_frontier_identity = True

    def __init__(self, tgds: TGDSet, budget: Optional[ChaseBudget] = None,
                 record_derivation: bool = True, compiled: bool = True) -> None:
        super().__init__(tgds, budget=budget, record_derivation=record_derivation,
                         compiled=compiled)
        self._fire_counter = itertools.count()

    def trigger_key(self, trigger: Trigger):
        # Like the semi-oblivious chase, a restricted-chase trigger never
        # needs to fire twice for the same frontier binding: after the
        # first application the head is satisfied by the invented nulls.
        return trigger.frontier_key()

    def is_active(self, trigger: Trigger, instance: Instance) -> bool:
        return trigger.is_active_restricted(instance)

    def trigger_result(self, trigger: Trigger) -> List[Atom]:
        # Nulls are fresh per application; a per-engine counter entry is
        # mixed into the label so distinct applications yield distinct
        # nulls while the depth bookkeeping (driven by the frontier
        # images in the binding) stays correct.
        binding = dict(trigger.frontier_binding())
        binding["__fire__"] = Constant(f"fire{next(self._fire_counter)}")
        return trigger.result(null_binding=binding)

    def evaluate(
        self, instance: Instance, rule: CompiledRule, binding
    ) -> Optional[List[Atom]]:
        # Activeness: no extension of h|fr(σ) maps the head into the
        # instance.  extend_homomorphism runs on a compiled head plan
        # cached per (head, frontier), shared across all activeness
        # checks of this rule.
        seed = rule.frontier_binding(binding)
        if extend_homomorphism(rule.tgd.head, instance, seed) is not None:
            return None
        return self.trigger_result(rule.make_trigger(binding))


def restricted_chase(
    database: Database,
    tgds: TGDSet,
    budget: Optional[ChaseBudget] = None,
    record_derivation: bool = True,
    compiled: bool = True,
) -> ChaseResult:
    """Run one fair restricted-chase derivation of ``database`` w.r.t. ``tgds``."""
    engine = RestrictedChase(
        tgds, budget=budget, record_derivation=record_derivation, compiled=compiled
    )
    return engine.run(database)
