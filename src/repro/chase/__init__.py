"""Chase engines.

Implements the semi-oblivious chase (the paper's object of study) plus
the oblivious and restricted variants used as baselines, the guarded
chase forest of Section 5, and depth bookkeeping (Definition 4.3).
"""

from repro.chase.plan import CompiledRule, TriggerPipeline
from repro.chase.store_plan import StoreCompiledRule, StoreTriggerPipeline
from repro.chase.trigger import Trigger
from repro.chase.engine import (
    ENGINES,
    ChaseBudget,
    ChaseResult,
    ChaseStatistics,
    DerivationStep,
)
from repro.chase.semi_oblivious import SemiObliviousChase, semi_oblivious_chase
from repro.chase.oblivious import ObliviousChase, oblivious_chase
from repro.chase.restricted import RestrictedChase, restricted_chase
from repro.chase.forest import GuardedChaseForest, build_guarded_forest
from repro.chase.depth import instance_max_depth, max_depth

#: The single registry of chase variants, keyed by CLI/manifest
#: spelling.  The CLI, the batch runtime's job validation and its
#: worker dispatch all derive from this map — adding a variant here is
#: the only edit needed to expose it everywhere.
VARIANT_RUNNERS = {
    "semi-oblivious": semi_oblivious_chase,
    "restricted": restricted_chase,
    "oblivious": oblivious_chase,
}

__all__ = [
    "VARIANT_RUNNERS",
    "ENGINES",
    "Trigger",
    "CompiledRule",
    "TriggerPipeline",
    "StoreCompiledRule",
    "StoreTriggerPipeline",
    "ChaseBudget",
    "ChaseResult",
    "ChaseStatistics",
    "DerivationStep",
    "SemiObliviousChase",
    "semi_oblivious_chase",
    "ObliviousChase",
    "oblivious_chase",
    "RestrictedChase",
    "restricted_chase",
    "GuardedChaseForest",
    "build_guarded_forest",
    "instance_max_depth",
    "max_depth",
]
