"""Shared chase machinery: budgets, derivation records, results.

All chase variants share the same driver skeleton: rounds of semi-naive
trigger enumeration, an applied-trigger memo, and a budget that bounds
the materialised instance so that provably non-terminating runs fail
fast instead of exhausting memory.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.model.atoms import Atom
from repro.model.homomorphism import (
    find_homomorphisms_reference,
    find_homomorphisms_with_forced_atom_reference,
)
from repro.model.instance import Database, Instance
from repro.model.store import Fact, FactStore
from repro.model.terms import Null
from repro.model.tgd import TGD, TGDSet
from repro.obs.probe import ChaseProbe
from repro.obs.profile import RuleProfiler
from repro.chase.plan import CompiledRule, TriggerPipeline
from repro.chase.store_plan import StoreCompiledRule, StoreTriggerPipeline
from repro.chase.trigger import Trigger

#: Engine implementations selectable per run.  ``store`` (the default)
#: runs on the interned fact store, ``plans`` on the term-level
#: compiled pipeline it superseded, ``legacy`` on the original
#: per-round rescan over the reference homomorphism search (the
#: executable specification, also reachable as ``compiled=False``).
ENGINES = ("store", "plans", "legacy")


class ChaseOutcome(Enum):
    """Why a chase run stopped."""

    TERMINATED = "terminated"
    ATOM_BUDGET_EXCEEDED = "atom_budget_exceeded"
    DEPTH_BUDGET_EXCEEDED = "depth_budget_exceeded"
    ROUND_BUDGET_EXCEEDED = "round_budget_exceeded"
    TIME_BUDGET_EXCEEDED = "time_budget_exceeded"


@dataclass(frozen=True)
class ChaseBudget:
    """Resource limits for a chase run.

    A finite chase needs no budget; the defaults are generous enough for
    every terminating workload in the test-suite and benchmarks while
    letting non-terminating runs stop deterministically.
    """

    max_atoms: int = 1_000_000
    max_rounds: int = 1_000_000
    max_depth: Optional[int] = None
    max_seconds: Optional[float] = None
    truncate_at_depth: bool = False

    def replace(self, **changes: object) -> "ChaseBudget":
        """A copy with the given fields changed.

        All copy helpers go through :func:`dataclasses.replace` so a
        newly added budget field can never silently drop out of a copy.
        """
        return dataclasses.replace(self, **changes)

    def with_max_atoms(self, max_atoms: int) -> "ChaseBudget":
        return self.replace(max_atoms=max_atoms)

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON- and pickle-friendly), field for field."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class DerivationStep:
    """One trigger application: the trigger, its guard image, the new atoms."""

    trigger: Trigger
    guard_image: Optional[Atom]
    new_atoms: Tuple[Atom, ...]


@dataclass
class ChaseStatistics:
    """Counters reported by a chase run."""

    rounds: int = 0
    triggers_considered: int = 0
    triggers_applied: int = 0
    atoms_created: int = 0
    wall_seconds: float = 0.0


@dataclass(frozen=True)
class EngineCheckpoint:
    """Frozen mid-run loop state a retried job resumes from.

    Produced by the executor from a :mod:`repro.runtime.checkpoint`
    blob.  Unlike ``resume_from`` (an incremental re-chase over a
    database delta), a checkpoint resumes the *same* run: the store
    blob is the instance as of a round boundary, ``marks`` are the
    per-predicate row counts delimiting that round's frontier, and the
    counters seed the statistics so the final summary is byte-identical
    to an uninterrupted run.  Only the arrays-layout summary driver
    (the executor's configuration) supports it.
    """

    store_blob: bytes
    marks: Tuple[int, ...]
    rounds: int
    considered: int
    applied: int
    created: int
    database_size: int


@dataclass
class ChaseResult:
    """The outcome of a chase run.

    Attributes
    ----------
    instance:
        The materialised instance (the chase result if ``terminated``).
        On the store engine this decodes *lazily* on first access: a
        caller that only reads the summary (the batch runtime's normal
        mode) never pays for atom materialisation at all.
    terminated:
        True iff the run reached a fixpoint within budget, i.e. the
        instance is ``chase(D, Σ)``.
    outcome:
        The precise stop reason.
    max_depth:
        ``maxdepth(D, Σ)`` of the materialised part (the true value if
        ``terminated``).
    derivation:
        The sequence of trigger applications, used to build the guarded
        chase forest; empty when recording was disabled.
    """

    terminated: bool
    outcome: ChaseOutcome
    statistics: ChaseStatistics
    max_depth: int
    database_size: int
    derivation: Tuple[DerivationStep, ...] = ()
    depth_truncated: bool = False
    #: Eagerly materialised instance (plans/legacy engines) — internal,
    #: read through the ``instance`` property.
    _materialized: Optional[Instance] = None
    #: Pending decode source (store engine) plus its O(1) atom count.
    _store: Optional["FactStore"] = None
    _atom_count: int = 0
    #: Round-level probe payload (``ChaseProbe.as_dict()``) when the
    #: run carried a probe; ``None`` otherwise — and then absent from
    #: :meth:`summary`, which keeps unprobed summaries byte-identical.
    telemetry: Optional[Dict[str, object]] = None
    #: True for incremental (``resume_from``) runs, whose statistics
    #: cover only the delta work; ``base_rounds`` is the base run's
    #: round count when its snapshot carried one (else 0).
    resumed: bool = False
    base_rounds: int = 0
    #: Per-rule attribution payload (``RuleProfiler.as_dict()``) when
    #: the run carried a profiler; ``None`` otherwise — and then absent
    #: from :meth:`summary`, exactly like ``telemetry``.
    profile: Optional[Dict[str, object]] = None

    @property
    def instance(self) -> Instance:
        """The materialised instance (decoded from the store on demand)."""
        if self._materialized is None:
            assert self._store is not None
            self._materialized = self._store.to_instance()
            self._store = None
        return self._materialized

    def store_snapshot(self) -> Optional[bytes]:
        """Encode the result's fact store as transferable plain bytes.

        Only available on the store engine while the result is still
        backed by its store (i.e. before :attr:`instance` materialised
        and released it); returns ``None`` otherwise.  The bytes feed
        :func:`~repro.model.store.FactStore.restore` — and with it the
        executor's snapshot payloads and ``resume_from`` re-chase.
        Taking a snapshot does not consume the store: reading
        :attr:`instance` afterwards still works.
        """
        if self._store is None:
            return None
        return self._store.snapshot(
            complete=self.terminated,
            rounds=self.base_rounds + self.statistics.rounds,
        )

    @property
    def size(self) -> int:
        """Number of atoms in the result (O(1), no materialisation)."""
        if self._materialized is not None:
            return len(self._materialized)
        return self._atom_count

    def summary(self) -> Dict[str, object]:
        """A plain-data summary of the run (picklable, JSON-friendly).

        This is what the batch runtime ships across process boundaries
        and stores in the result cache.  It deliberately excludes
        wall-clock timings: two runs of the same job — serial, pooled,
        or replayed from cache — produce byte-identical summaries once
        serialised with ``json.dumps(..., sort_keys=True)``.

        The ``telemetry`` and ``resumed``/``base_rounds`` keys appear
        only when set (probe attached / incremental run), so summaries
        of plain runs keep their exact pre-existing shape.  Telemetry
        contains wall times and is stripped by the result cache before
        storing (see :meth:`repro.runtime.executor.BatchExecutor`).
        """
        summary: Dict[str, object] = {
            "outcome": self.outcome.value,
            "terminated": self.terminated,
            "size": self.size,
            "database_size": self.database_size,
            "max_depth": self.max_depth,
            "depth_truncated": self.depth_truncated,
            "expansion_ratio": round(self.expansion_ratio(), 6),
            "rounds": self.statistics.rounds,
            "triggers_considered": self.statistics.triggers_considered,
            "triggers_applied": self.statistics.triggers_applied,
            "atoms_created": self.statistics.atoms_created,
        }
        if self.resumed:
            # A resumed run's rounds/triggers cover only the delta work
            # — flag it so dashboards never read a 5%-delta re-chase as
            # a full run, and carry the base run's round offset.
            summary["resumed"] = True
            summary["base_rounds"] = self.base_rounds
        if self.telemetry is not None:
            summary["telemetry"] = self.telemetry
        if self.profile is not None:
            summary["profile"] = self.profile
        return summary

    def expansion_ratio(self) -> float:
        """``|chase(D, Σ)| / |D|`` (1.0 for an empty database)."""
        if self.database_size == 0:
            return 1.0
        return self.size / self.database_size


class BaseChaseEngine:
    """Round-based, semi-naive chase driver.

    Subclasses fix the two variant-specific choices: the identity of a
    trigger (what makes two trigger applications "the same") and how a
    trigger's result is produced (which binding labels its nulls, and
    when the trigger counts as active).

    By default the driver runs on the interned fact store
    (``engine="store"``): predicates and terms are dictionary-encoded
    to dense ids, joins intersect posting lists of packed int tuples,
    and atoms are only materialised at API boundaries.
    ``engine="plans"`` selects the term-level compiled pipeline
    (:class:`~repro.chase.plan.TriggerPipeline`) the store superseded,
    and ``engine="legacy"`` (equivalently ``compiled=False``) the
    original per-round rescan over the reference homomorphism search —
    kept as the executable specification and the "before" engine for
    benchmarks and equivalence tests.
    """

    #: Trigger identity: ``h|fr(σ)`` when True (semi-oblivious,
    #: restricted), the full ``h`` when False (oblivious).
    uses_frontier_identity: bool = True

    #: Set by the shipped variants, which implement
    #: :meth:`store_evaluate`.  Custom subclasses that only override
    #: the term-level hooks keep working: ``engine="store"`` silently
    #: falls back to the plans pipeline for them.
    supports_store_engine: bool = False

    def __init__(self, tgds: TGDSet, budget: Optional[ChaseBudget] = None,
                 record_derivation: bool = True, compiled: bool = True,
                 engine: Optional[str] = None,
                 probe: Optional[ChaseProbe] = None,
                 profile: Optional[RuleProfiler] = None,
                 round_hook=None) -> None:
        self.tgds = tgds
        self.budget = budget or ChaseBudget()
        self.record_derivation = record_derivation
        #: Optional per-round callback ``hook(rounds, store, marks,
        #: (considered, applied, created))`` fired at every completed
        #: round boundary — the executor's checkpointer and the fault
        #: injector's ``worker.round`` point.  ``store``/``marks`` are
        #: ``None`` outside the store/columnar drivers.  ``None`` (the
        #: default) keeps every loop on its hook-free path: one
        #: ``is None`` check per round.
        self.round_hook = round_hook
        #: Optional round-level telemetry probe.  ``None`` (the
        #: default) keeps every driver loop on its probe-free path: one
        #: ``is None`` check per *round*, nothing per trigger.
        self.probe = probe
        #: Optional per-rule attribution profiler.  ``None`` (the
        #: default) keeps the drivers on their profile-free paths —
        #: pending lists are rule-major, so the profiled paths only
        #: read the clock at rule-segment boundaries.
        self.profile = profile
        if engine is None:
            engine = "store" if compiled else "legacy"
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}, expected one of {ENGINES}")
        self.engine = engine
        self.compiled = engine != "legacy"

    # -- variant hooks ------------------------------------------------------

    def trigger_key(self, trigger: Trigger):
        raise NotImplementedError

    def is_active(self, trigger: Trigger, instance: Instance) -> bool:
        raise NotImplementedError

    def trigger_result(self, trigger: Trigger) -> List[Atom]:
        raise NotImplementedError

    def evaluate(
        self, instance: Instance, rule: CompiledRule, binding
    ) -> Optional[List[Atom]]:
        """Return the trigger's result atoms if it is active, else ``None``.

        Called only on the compiled path: ``rule`` is the compiled rule
        and ``binding`` its canonical term tuple, so variants can share
        one computation between activeness and result construction.
        The default implementation materialises the trigger and falls
        back to the classic two hook calls, which keeps custom
        subclasses that only define ``is_active``/``trigger_result``
        working.
        """
        trigger = rule.make_trigger(binding)
        if not self.is_active(trigger, instance):
            return None
        return self.trigger_result(trigger)

    def _evaluate_by_containment(
        self, instance: Instance, rule: CompiledRule, binding
    ) -> Optional[List[Atom]]:
        """Shared evaluate for the variants whose activeness is ``result ⊄ I``.

        The result doubles as the activeness witness, so it is computed
        once from the compiled head template; the null labelling follows
        the variant's trigger identity (frontier or full binding).
        """
        atoms = rule.result_atoms(binding, full_labels=not self.uses_frontier_identity)
        for a in atoms:
            if a not in instance:
                return atoms
        return None

    # -- store-engine hooks ---------------------------------------------------

    def store_evaluate(
        self, store: FactStore, rule: StoreCompiledRule, canonical, key
    ) -> Optional[List[Fact]]:
        """Id-space twin of :meth:`evaluate`: result facts if active.

        Runs entirely on interned ids — no atom or null objects.
        ``key`` is the trigger's applied-memo key, already built by the
        driver (variants reuse it instead of re-deriving the frontier).
        The shipped variants override this (and set
        ``supports_store_engine``); the base raises so a forgotten
        override fails loudly instead of silently diverging.
        """
        raise NotImplementedError

    def _store_evaluate_by_containment(
        self, store: FactStore, rule: StoreCompiledRule, canonical, key
    ) -> Optional[List[Fact]]:
        """Shared store evaluate for the ``result ⊄ I`` variants."""
        facts = rule.result_facts(
            store, canonical, full_labels=not self.uses_frontier_identity
        )
        contains = store.contains
        for pid, ids in facts:
            if not contains(pid, ids):
                return facts
        return None

    def _begin_store_run(self) -> None:
        """Reset per-run store-engine state (variant hook)."""

    # -- driver ---------------------------------------------------------------

    def run(
        self,
        database,
        resume_from: Optional[object] = None,
        database_size: Optional[int] = None,
        checkpoint: Optional[EngineCheckpoint] = None,
    ) -> ChaseResult:
        """Chase ``database`` (a :class:`Database` or ground instance).

        Store-engine extensions:

        * ``database`` may be a pre-seeded :class:`FactStore` (e.g.
          restored from a snapshot shipped by the batch executor), in
          which case its facts *are* the database and no parsing or
          interning happens here.  Engines without store support decode
          it back to an :class:`Instance` first.
        * ``resume_from`` makes the run *incremental*: it is the
          snapshot (bytes, or a live :class:`FactStore`, which is then
          mutated in place) of a previously terminated chase over a
          database ``D₀ ⊆ database``.  Only the facts of ``database``
          not already present seed the trigger frontier, and the rounds
          replay the semi-naive pipeline from there — the store-engine
          analogue of resuming the chase after a database delta.  The
          caller usually passes only the delta as ``database`` and the
          full database's size as ``database_size`` (which otherwise
          defaults to ``len(database)``).
        * ``checkpoint`` restarts an *interrupted* run from its last
          mid-run checkpoint instead of cold: the store, frontier marks
          and statistics are seeded from the checkpoint and the loop
          continues where the dead run stopped.  Mutually exclusive
          with ``resume_from``; ``database`` is ignored (its facts are
          already in the checkpointed store).
        """
        if checkpoint is not None and resume_from is not None:
            raise ValueError("checkpoint and resume_from are mutually exclusive")
        if self.engine == "store" and self.supports_store_engine:
            return self._run_store(
                database,
                resume_from=resume_from,
                database_size=database_size,
                checkpoint=checkpoint,
            )
        if checkpoint is not None:
            raise ValueError(
                "checkpoint resume requires the store engine "
                f"(this run uses engine={self.engine!r})"
            )
        if resume_from is not None:
            raise ValueError(
                "resume_from requires the store engine "
                f"(this run uses engine={self.engine!r})"
            )
        if isinstance(database, FactStore):
            database = database.to_instance()
        start = time.perf_counter()
        instance = Instance(database)
        statistics = ChaseStatistics()
        derivation: List[DerivationStep] = []
        applied: Set = set()
        outcome = ChaseOutcome.TERMINATED
        depth_truncated = False
        profiler = self.profile
        if profiler is None:
            driver_start = start
            pipeline = (
                TriggerPipeline(self.tgds, selectivity=instance.count)
                if self.compiled
                else None
            )
        else:
            # The attribution denominator starts here: instance setup
            # above is reported separately as setup_seconds.
            driver_start = time.perf_counter()
            compile_seconds = [0.0] * len(self.tgds)
            pipeline = (
                TriggerPipeline(
                    self.tgds,
                    selectivity=instance.count,
                    compile_seconds=compile_seconds,
                )
                if self.compiled
                else None
            )
            prof_slots = profiler.attach(t.rule_id for t in self.tgds)
            if pipeline is not None:
                profiler.add_compile_seconds(prof_slots, compile_seconds)
            slot_of_rule_id = {
                t.rule_id: prof_slots[i] for i, t in enumerate(self.tgds)
            }
            p_seconds = profiler.seconds
            p_considered = profiler.considered
            p_fired = profiler.fired
            p_pruned = profiler.pruned
            p_facts = profiler.facts
            p_nulls = profiler.nulls
            prof_seen_nulls: Set = set()
            slot = -1

        delta: List[Atom] = list(instance)
        first_round = True
        probe = self.probe
        seen_nulls: Set = set()
        round_delta = 0
        considered_before = applied_before = created_before = 0
        while True:
            if statistics.rounds >= self.budget.max_rounds:
                outcome = ChaseOutcome.ROUND_BUDGET_EXCEEDED
                break
            if probe is not None:
                probe.begin_round()
                round_delta = len(delta)
                considered_before = statistics.triggers_considered
                applied_before = statistics.triggers_applied
                created_before = statistics.atoms_created
            # Materialise the round's triggers up front: the instance is
            # mutated while they are applied, so lazy enumeration would
            # race against the indexes it reads.
            if pipeline is not None:
                make_key = (
                    CompiledRule.frontier_key
                    if self.uses_frontier_identity
                    else CompiledRule.full_key
                )
                source = (
                    pipeline.initial_triggers(instance)
                    if first_round
                    else pipeline.delta_triggers(instance, delta)
                )
                if profiler is None:
                    pending = [(rule, sub, make_key(rule, sub)) for rule, sub in source]
                else:
                    # The pipeline yields rule-major, so enumeration
                    # time is attributed per contiguous rule segment:
                    # the clock is read only where the rule changes.
                    pending = []
                    append = pending.append
                    seg_slot = -1
                    seg_start = 0.0
                    for rule, sub in source:
                        s = prof_slots[rule.index]
                        if s != seg_slot:
                            now = time.perf_counter()
                            if seg_slot >= 0:
                                p_seconds[seg_slot] += now - seg_start
                            seg_slot = s
                            seg_start = now
                        append((rule, sub, make_key(rule, sub)))
                    if seg_slot >= 0:
                        p_seconds[seg_slot] += time.perf_counter() - seg_start
            elif profiler is None:
                pending = [
                    (None, None, trigger)
                    for trigger in self._collect_triggers(instance, delta, first_round)
                ]
            else:
                # Legacy rescan: _collect_triggers walks the TGDs in
                # order, so its output is rule-major too.
                pending = []
                append = pending.append
                seg_slot = -1
                seg_start = 0.0
                for trigger in self._collect_triggers(instance, delta, first_round):
                    s = slot_of_rule_id[trigger.tgd.rule_id]
                    if s != seg_slot:
                        now = time.perf_counter()
                        if seg_slot >= 0:
                            p_seconds[seg_slot] += now - seg_start
                        seg_slot = s
                        seg_start = now
                    append((None, None, trigger))
                if seg_slot >= 0:
                    p_seconds[seg_slot] += time.perf_counter() - seg_start
            first_round = False
            new_atoms_this_round: List[Atom] = []
            fired_any = False
            over_budget = False
            apply_slot = -1
            apply_start = 0.0
            for rule, binding, item in pending:
                statistics.triggers_considered += 1
                if profiler is not None:
                    slot = (
                        prof_slots[rule.index]
                        if rule is not None
                        else slot_of_rule_id[item.tgd.rule_id]
                    )
                    if slot != apply_slot:
                        now = time.perf_counter()
                        if apply_slot >= 0:
                            p_seconds[apply_slot] += now - apply_start
                        apply_slot = slot
                        apply_start = now
                    p_considered[slot] += 1
                if rule is not None:
                    key = item
                    if key in applied:
                        if profiler is not None:
                            p_pruned[slot] += 1
                        continue
                    trigger = None
                    result_atoms = self.evaluate(instance, rule, binding)
                else:
                    trigger = item
                    key = self.trigger_key(trigger)
                    if key in applied:
                        if profiler is not None:
                            p_pruned[slot] += 1
                        continue
                    result_atoms = (
                        self.trigger_result(trigger)
                        if self.is_active(trigger, instance)
                        else None
                    )
                if result_atoms is None:
                    applied.add(key)
                    if profiler is not None:
                        p_pruned[slot] += 1
                    continue
                if (
                    self.budget.truncate_at_depth
                    and self.budget.max_depth is not None
                ):
                    kept = [a for a in result_atoms if a.depth() <= self.budget.max_depth]
                    if len(kept) < len(result_atoms):
                        depth_truncated = True
                        # Do not memoise the trigger: it produced atoms we
                        # refused to materialise, so it stays pending.
                        result_atoms = kept
                        if not result_atoms:
                            continue
                    else:
                        applied.add(key)
                else:
                    applied.add(key)
                added = instance.add_all(result_atoms)
                statistics.triggers_applied += 1
                statistics.atoms_created += len(added)
                fired_any = True
                if profiler is not None:
                    p_fired[slot] += 1
                    if added:
                        p_facts[slot] += len(added)
                        fresh_nulls = 0
                        for atom in added:
                            for term in atom.args:
                                if (
                                    isinstance(term, Null)
                                    and term not in prof_seen_nulls
                                ):
                                    prof_seen_nulls.add(term)
                                    fresh_nulls += 1
                        if fresh_nulls:
                            p_nulls[slot] += fresh_nulls
                if added:
                    new_atoms_this_round.extend(added)
                    if self.record_derivation:
                        if trigger is None:
                            trigger = rule.make_trigger(binding)
                        derivation.append(
                            DerivationStep(
                                trigger=trigger,
                                guard_image=trigger.guard_image(),
                                new_atoms=tuple(added),
                            )
                        )
                if len(instance) > self.budget.max_atoms:
                    outcome = ChaseOutcome.ATOM_BUDGET_EXCEEDED
                    over_budget = True
                    break
                if self.budget.max_depth is not None and any(
                    a.depth() > self.budget.max_depth for a in added
                ):
                    outcome = ChaseOutcome.DEPTH_BUDGET_EXCEEDED
                    over_budget = True
                    break
                if (
                    self.budget.max_seconds is not None
                    and time.perf_counter() - start > self.budget.max_seconds
                ):
                    outcome = ChaseOutcome.TIME_BUDGET_EXCEEDED
                    over_budget = True
                    break
            if profiler is not None and apply_slot >= 0:
                p_seconds[apply_slot] += time.perf_counter() - apply_start
            statistics.rounds += 1
            if probe is not None:
                nulls = 0
                for atom in new_atoms_this_round:
                    for term in atom.args:
                        if isinstance(term, Null) and term not in seen_nulls:
                            seen_nulls.add(term)
                            nulls += 1
                probe.end_round(
                    round_delta,
                    statistics.triggers_considered - considered_before,
                    statistics.triggers_applied - applied_before,
                    statistics.atoms_created - created_before,
                    nulls_invented=nulls,
                )
            if over_budget:
                break
            if self.round_hook is not None:
                self.round_hook(
                    statistics.rounds,
                    None,
                    None,
                    (
                        statistics.triggers_considered,
                        statistics.triggers_applied,
                        statistics.atoms_created,
                    ),
                )
            if not new_atoms_this_round:
                if not fired_any:
                    outcome = ChaseOutcome.TERMINATED
                    break
                # Triggers fired but produced no new atoms: fixpoint reached.
                outcome = ChaseOutcome.TERMINATED
                break
            delta = new_atoms_this_round

        statistics.wall_seconds = time.perf_counter() - start
        if profiler is not None:
            profiler.finish_run(
                time.perf_counter() - driver_start,
                setup_seconds=driver_start - start,
                engine=self.engine,
            )
        return ChaseResult(
            _materialized=instance,
            terminated=outcome is ChaseOutcome.TERMINATED,
            outcome=outcome,
            statistics=statistics,
            max_depth=instance.max_depth(),
            database_size=len(database),
            derivation=tuple(derivation),
            depth_truncated=depth_truncated,
            telemetry=probe.as_dict() if probe is not None else None,
            profile=profiler.as_dict() if profiler is not None else None,
        )

    def _run_store(
        self,
        database,
        resume_from: Optional[object] = None,
        database_size: Optional[int] = None,
        checkpoint: Optional[EngineCheckpoint] = None,
    ) -> ChaseResult:
        """The store-backed driver: the :meth:`run` loop over id tuples.

        Control flow mirrors :meth:`run` statement for statement (same
        rounds, same budget checks, same memoisation points), so the
        two drivers consider and apply exactly the same triggers; only
        the data plane differs.  Atoms are decoded at exactly two
        boundaries: derivation recording and the final instance.

        With ``resume_from`` the first round is a *delta* round over
        only the facts of ``database`` that the restored store did not
        already contain: triggers whose body image lies entirely in the
        old store fired (or were found inactive) in the base run and
        are never re-enumerated, which is what makes a 5% database
        delta cost ~5% of the chase instead of 100%.
        """
        start = time.perf_counter()
        delta: List[Fact]
        first_round = True
        resumed = resume_from is not None
        if checkpoint is not None:
            # Same-run restart: the checkpointed store already holds the
            # database and every derived fact up to the checkpoint round,
            # so nothing is interned here; the saved marks delimit the
            # frontier the loop resumes from.  resumed stays False — the
            # seeded statistics make the final summary read exactly like
            # an uninterrupted run's.
            store = FactStore.restore(checkpoint.store_blob)
            delta = []
            first_round = False
            database_size = checkpoint.database_size
        elif resume_from is not None:
            store = (
                resume_from
                if isinstance(resume_from, FactStore)
                else FactStore.restore(resume_from)
            )
            delta = []
            for a in database:
                pid, ids = store.intern_atom(a)
                if store.add(pid, ids):
                    delta.append((pid, ids))
            first_round = False
            if database_size is None:
                database_size = len(database)
        elif isinstance(database, FactStore):
            store = database
            delta = []
            database_size = len(store)
        else:
            store = FactStore()
            delta = [store.add_atom(a) for a in database]
            database_size = len(database)
        statistics = ChaseStatistics()
        derivation: List[DerivationStep] = []
        applied: Set = set()
        outcome = ChaseOutcome.TERMINATED
        depth_truncated = False
        profiler = self.profile
        if profiler is None:
            driver_start = start
            prof_slots = None
            enum_seconds = None
            pipeline = StoreTriggerPipeline(self.tgds, store)
        else:
            # The attribution denominator starts here: store seeding
            # and interning above are reported as setup_seconds.
            driver_start = time.perf_counter()
            compile_seconds = [0.0] * len(self.tgds)
            pipeline = StoreTriggerPipeline(
                self.tgds, store, compile_seconds=compile_seconds
            )
            prof_slots = profiler.attach(r.rule_id for r in pipeline.rules)
            profiler.add_compile_seconds(prof_slots, compile_seconds)
            enum_seconds = [0.0] * len(pipeline.rules)
            p_seconds = profiler.seconds
            p_considered = profiler.considered
            p_fired = profiler.fired
            p_pruned = profiler.pruned
            p_facts = profiler.facts
            p_nulls = profiler.nulls
            slot = -1
        self._begin_store_run()
        budget = self.budget
        uses_frontier = self.uses_frontier_identity
        store_evaluate = self.store_evaluate
        add_fact = store.add
        fact_depth = store.fact_depth
        base_rounds = (store.restored_rounds or 0) if resumed else 0
        if store.layout == "arrays" and not self.record_derivation and not (
            budget.truncate_at_depth and budget.max_depth is not None
        ):
            # The columnar fast loop: same rounds, same memo points,
            # same budget verdicts — but deltas are row ranges and the
            # dominant rule shape is evaluated inline.
            return self._run_store_columnar(
                store, pipeline, delta, first_round, database_size, start,
                resumed=resumed, base_rounds=base_rounds,
                prof_slots=prof_slots, enum_seconds=enum_seconds,
                driver_start=driver_start,
                checkpoint=checkpoint,
            )
        if checkpoint is not None:
            # The executor only checkpoints runs it started on this
            # driver, so reaching here means the configuration changed
            # between attempts — refuse rather than silently terminate
            # on an empty delta.
            raise ValueError(
                "checkpoint resume requires the arrays-layout summary driver "
                "(no derivation recording, no depth truncation)"
            )

        probe = self.probe
        round_delta = 0
        considered_before = applied_before = created_before = 0
        nulls_before = builds_before = 0
        # Segment carry across rounds — see _run_store_columnar: a
        # segment closes only where another opens, so round bookkeeping
        # is attributed to the adjacent rule.
        apply_slot = -1
        apply_start = 0.0
        seg_nulls = 0
        if profiler is not None:
            apply_start = time.perf_counter()
            seg_nulls = store.null_count()
        while True:
            if statistics.rounds >= budget.max_rounds:
                outcome = ChaseOutcome.ROUND_BUDGET_EXCEEDED
                break
            if probe is not None:
                probe.begin_round()
                round_delta = len(delta) if not first_round else len(store)
                considered_before = statistics.triggers_considered
                applied_before = statistics.triggers_applied
                created_before = statistics.atoms_created
                nulls_before = store.null_count()
                builds_before = store.index_builds
            if profiler is not None and apply_slot >= 0:
                now = time.perf_counter()
                p_seconds[apply_slot] += now - apply_start
                p_nulls[apply_slot] += store.null_count() - seg_nulls
                apply_slot = -1
            # Materialise the round's triggers up front; the pending
            # list aliases no live posting list, so applying triggers
            # below is free to mutate the store.
            pending = (
                pipeline.initial_pending(store, uses_frontier, enum_seconds)
                if first_round
                else pipeline.delta_pending(store, delta, uses_frontier, enum_seconds)
            )
            if profiler is not None:
                apply_start = time.perf_counter()
                seg_nulls = store.null_count()
            first_round = False
            new_facts: List[Fact] = []
            over_budget = False
            for rule, ids, key in pending:
                statistics.triggers_considered += 1
                if profiler is not None:
                    slot = prof_slots[rule.index]
                    if slot != apply_slot:
                        # One clock read + one O(1) null_count per rule
                        # segment; the pending list is rule-major so
                        # nothing here is per trigger.  An opening
                        # segment keeps the enumeration-end anchor.
                        if apply_slot >= 0:
                            now = time.perf_counter()
                            null_mark = store.null_count()
                            p_seconds[apply_slot] += now - apply_start
                            p_nulls[apply_slot] += null_mark - seg_nulls
                            apply_start = now
                            seg_nulls = null_mark
                        apply_slot = slot
                    p_considered[slot] += 1
                if key in applied:
                    if profiler is not None:
                        p_pruned[slot] += 1
                    continue
                result_facts = store_evaluate(store, rule, ids, key)
                if result_facts is None:
                    applied.add(key)
                    if profiler is not None:
                        p_pruned[slot] += 1
                    continue
                if budget.truncate_at_depth and budget.max_depth is not None:
                    kept = [
                        f for f in result_facts if fact_depth(f[1]) <= budget.max_depth
                    ]
                    if len(kept) < len(result_facts):
                        depth_truncated = True
                        # Not memoised: the trigger stays pending (see run()).
                        result_facts = kept
                        if not result_facts:
                            continue
                    else:
                        applied.add(key)
                else:
                    applied.add(key)
                added = [f for f in result_facts if add_fact(f[0], f[1])]
                statistics.triggers_applied += 1
                statistics.atoms_created += len(added)
                if profiler is not None:
                    p_fired[slot] += 1
                    p_facts[slot] += len(added)
                if added:
                    new_facts.extend(added)
                    if self.record_derivation:
                        trigger = rule.make_trigger(store, ids)
                        derivation.append(
                            DerivationStep(
                                trigger=trigger,
                                guard_image=trigger.guard_image(),
                                new_atoms=tuple(
                                    store.decode_fact(pid, fids) for pid, fids in added
                                ),
                            )
                        )
                if len(store) > budget.max_atoms:
                    outcome = ChaseOutcome.ATOM_BUDGET_EXCEEDED
                    over_budget = True
                    break
                if budget.max_depth is not None and any(
                    fact_depth(fids) > budget.max_depth for _, fids in added
                ):
                    outcome = ChaseOutcome.DEPTH_BUDGET_EXCEEDED
                    over_budget = True
                    break
                if (
                    budget.max_seconds is not None
                    and time.perf_counter() - start > budget.max_seconds
                ):
                    outcome = ChaseOutcome.TIME_BUDGET_EXCEEDED
                    over_budget = True
                    break
            statistics.rounds += 1
            if probe is not None:
                probe.end_round(
                    round_delta,
                    statistics.triggers_considered - considered_before,
                    statistics.triggers_applied - applied_before,
                    statistics.atoms_created - created_before,
                    nulls_invented=store.null_count() - nulls_before,
                    index_builds=store.index_builds - builds_before,
                )
            if over_budget:
                break
            if self.round_hook is not None:
                self.round_hook(
                    statistics.rounds,
                    store,
                    None,
                    (
                        statistics.triggers_considered,
                        statistics.triggers_applied,
                        statistics.atoms_created,
                    ),
                )
            if not new_facts:
                outcome = ChaseOutcome.TERMINATED
                break
            delta = new_facts

        statistics.wall_seconds = time.perf_counter() - start
        if profiler is not None:
            # Driver window closes before the O(store) observe_store
            # sweep — profiler bookkeeping is not driver time.
            driver_end = time.perf_counter()
            if apply_slot >= 0:
                p_seconds[apply_slot] += driver_end - apply_start
                p_nulls[apply_slot] += store.null_count() - seg_nulls
            profiler.add_rule_seconds(prof_slots, enum_seconds)
            profiler.observe_store(store)
            profiler.finish_run(
                driver_end - driver_start,
                setup_seconds=driver_start - start,
                engine="store",
            )
        return ChaseResult(
            _store=store,
            _atom_count=len(store),
            terminated=outcome is ChaseOutcome.TERMINATED,
            outcome=outcome,
            statistics=statistics,
            max_depth=store.max_depth(),
            database_size=database_size,
            derivation=tuple(derivation),
            depth_truncated=depth_truncated,
            telemetry=probe.as_dict() if probe is not None else None,
            profile=profiler.as_dict() if profiler is not None else None,
            resumed=resumed,
            base_rounds=base_rounds,
        )

    def _run_store_columnar(
        self,
        store: FactStore,
        pipeline: StoreTriggerPipeline,
        delta: List[Fact],
        first_round: bool,
        database_size: int,
        start: float,
        resumed: bool = False,
        base_rounds: int = 0,
        prof_slots: Optional[List[int]] = None,
        enum_seconds: Optional[List[float]] = None,
        driver_start: Optional[float] = None,
        checkpoint: Optional[EngineCheckpoint] = None,
    ) -> ChaseResult:
        """The arrays-layout driver loop (summary mode).

        Semantically identical to the loop in :meth:`_run_store` —
        same trigger sets per round, same memoisation points, same
        budget verdicts, same statistics — restructured around what the
        columnar layout makes free:

        * the round's delta is the row range past the previous round's
          :meth:`~repro.model.store.FactStore.row_marks` instead of an
          accumulated fact list (``delta_pending_rows``);
        * the containment variants (semi-oblivious, oblivious) evaluate
          *add-first*: ``store.add`` already reports whether a fact was
          new, and "some result fact missing" is exactly "some add
          returned True", so the separate containment scan disappears —
          and a rule with one head atom and no existentials (the
          dominant shape in every benchmark family) is one getter call
          plus one add, no result list at all;
        * statistics accumulate in locals and fold back once per run.

        Derivation-recording and depth-truncating runs take the
        general loop instead (they need per-trigger added-atom lists),
        which keeps this loop free of both.
        """
        statistics = ChaseStatistics()
        applied: Set = set()
        outcome = ChaseOutcome.TERMINATED
        budget = self.budget
        uses_frontier = self.uses_frontier_identity
        store_evaluate = self.store_evaluate
        containment = (
            type(self).store_evaluate is BaseChaseEngine._store_evaluate_by_containment
        )
        full_labels = not uses_frontier
        add_fact = store.add
        fact_depth = store.fact_depth
        max_atoms = budget.max_atoms
        max_rounds = budget.max_rounds
        depth_limit = budget.max_depth
        max_seconds = budget.max_seconds
        perf_counter = time.perf_counter
        applied_add = applied.add
        round_hook = self.round_hook
        if checkpoint is not None:
            # Same-run restart: the counters continue from the
            # checkpoint so the final statistics equal an uninterrupted
            # run's.  The applied memo is *not* restored — any trigger
            # first enumerable after the checkpoint round has a body
            # fact in that round's delta, so it was never enumerable
            # before; within-round duplicates re-prune against the
            # fresh memo.
            rounds = checkpoint.rounds
            considered = checkpoint.considered
            fired = checkpoint.applied
            created = checkpoint.created
        else:
            rounds = 0
            considered = 0
            fired = 0
            created = 0
        probe = self.probe
        profiler = self.profile
        if profiler is not None:
            p_seconds = profiler.seconds
            p_considered = profiler.considered
            p_fired = profiler.fired
            p_pruned = profiler.pruned
            p_facts = profiler.facts
            p_nulls = profiler.nulls
        round_delta = len(store) if first_round else len(delta)
        considered_before = fired_before = created_before = 0
        nulls_before = builds_before = 0
        if checkpoint is not None:
            # Resume the semi-naive loop exactly where the checkpoint
            # froze it: the saved marks delimit the checkpoint round's
            # appended rows, so the first iteration's
            # delta_pending_rows(store, marks) re-derives precisely the
            # frontier the interrupted run was about to expand.  The
            # marks cover every pipeline predicate because the original
            # run took them after pipeline compile interned the
            # program's schema, and restore preserves interning.
            pending = None
            marks = list(checkpoint.marks)
        else:
            pending = (
                pipeline.initial_pending(store, uses_frontier, enum_seconds)
                if first_round
                else pipeline.delta_pending(store, delta, uses_frontier, enum_seconds)
            )
        # Attribution carries one open rule segment across round
        # boundaries: a segment closes only where another opens (next
        # rule, next enumeration, or end of run), so round bookkeeping
        # — row marks, termination checks, the pending rebuild — lands
        # on the adjacent rule instead of disappearing.  On many-round
        # workloads (one trigger per round) that unattributed tail is
        # what used to break the 90% attribution target.
        #
        # Counters are never bumped per trigger: the loop already
        # maintains considered/fired/created locals, so every segment
        # close derives its per-rule deltas from the anchors taken at
        # segment open (pruned == considered − fired inside a segment —
        # every trigger either fires or prunes in this loop).  The
        # entire per-trigger profiled cost is one identity comparison.
        apply_slot = -1
        apply_start = 0.0
        seg_nulls = 0
        seg_rule = None
        seg_considered, seg_fired, seg_created = considered, fired, created
        if profiler is not None:
            apply_start = perf_counter()
            seg_nulls = store.null_count()
        while True:
            if rounds >= max_rounds:
                outcome = ChaseOutcome.ROUND_BUDGET_EXCEEDED
                break
            if probe is not None:
                probe.begin_round()
                considered_before = considered
                fired_before = fired
                created_before = created
                nulls_before = store.null_count()
                builds_before = store.index_builds
            if pending is None:
                if profiler is not None:
                    if apply_slot >= 0:
                        now = perf_counter()
                        p_seconds[apply_slot] += now - apply_start
                        p_nulls[apply_slot] += store.null_count() - seg_nulls
                        seg = considered - seg_considered
                        hits = fired - seg_fired
                        p_considered[apply_slot] += seg
                        p_fired[apply_slot] += hits
                        p_pruned[apply_slot] += seg - hits
                        p_facts[apply_slot] += created - seg_created
                    pending = pipeline.delta_pending_rows(
                        store, marks, uses_frontier, enum_seconds
                    )
                    apply_slot = -1
                    seg_rule = None
                    apply_start = perf_counter()
                    seg_nulls = store.null_count()
                else:
                    pending = pipeline.delta_pending_rows(
                        store, marks, uses_frontier, enum_seconds
                    )
            marks = store.row_marks()
            size_before = len(store)
            over_budget = False
            for rule, ids, key in pending:
                if profiler is not None and rule is not seg_rule:
                    # Rule-segment boundary: one clock read + one O(1)
                    # null_count + counter-delta flush, nothing per
                    # trigger.  An opening segment (apply_slot -1)
                    # keeps the enumeration-end anchor, so the
                    # row-mark and loop-entry gap is charged to the
                    # first rule.
                    if apply_slot >= 0:
                        now = perf_counter()
                        null_mark = store.null_count()
                        p_seconds[apply_slot] += now - apply_start
                        p_nulls[apply_slot] += null_mark - seg_nulls
                        seg = considered - seg_considered
                        hits = fired - seg_fired
                        p_considered[apply_slot] += seg
                        p_fired[apply_slot] += hits
                        p_pruned[apply_slot] += seg - hits
                        p_facts[apply_slot] += created - seg_created
                        apply_start = now
                        seg_nulls = null_mark
                    seg_considered = considered
                    seg_fired = fired
                    seg_created = created
                    seg_rule = rule
                    apply_slot = prof_slots[rule.index]
                considered += 1
                if key in applied:
                    continue
                applied_add(key)
                if containment:
                    # Add-first containment: the trigger was active iff
                    # any add reports a new fact — same verdict, same
                    # final store, no separate containment scan.
                    head_only = rule.head_only
                    if head_only is not None:
                        pid, getter = head_only
                        fact_ids = getter(ids)
                        if not add_fact(pid, fact_ids):
                            continue
                        fired += 1
                        created += 1
                        if (
                            depth_limit is not None
                            and fact_depth(fact_ids) > depth_limit
                        ):
                            outcome = ChaseOutcome.DEPTH_BUDGET_EXCEEDED
                            over_budget = True
                            break
                    elif rule.head_single_fresh is not None:
                        pid, fact_ids = rule.single_fresh_fact(store, ids, full_labels)
                        if not add_fact(pid, fact_ids):
                            continue
                        fired += 1
                        created += 1
                        if (
                            depth_limit is not None
                            and fact_depth(fact_ids) > depth_limit
                        ):
                            outcome = ChaseOutcome.DEPTH_BUDGET_EXCEEDED
                            over_budget = True
                            break
                    else:
                        added = 0
                        deep = False
                        for pid, fact_ids in rule.result_facts(
                            store, ids, full_labels=full_labels
                        ):
                            if add_fact(pid, fact_ids):
                                added += 1
                                if (
                                    depth_limit is not None
                                    and fact_depth(fact_ids) > depth_limit
                                ):
                                    deep = True
                        if not added:
                            continue
                        fired += 1
                        created += added
                        if deep:
                            outcome = ChaseOutcome.DEPTH_BUDGET_EXCEEDED
                            over_budget = True
                            break
                else:
                    result_facts = store_evaluate(store, rule, ids, key)
                    if result_facts is None:
                        continue
                    fired += 1
                    deep = False
                    for pid, fact_ids in result_facts:
                        if add_fact(pid, fact_ids):
                            created += 1
                            if (
                                depth_limit is not None
                                and fact_depth(fact_ids) > depth_limit
                            ):
                                deep = True
                    if deep:
                        outcome = ChaseOutcome.DEPTH_BUDGET_EXCEEDED
                        over_budget = True
                        break
                if len(store) > max_atoms:
                    outcome = ChaseOutcome.ATOM_BUDGET_EXCEEDED
                    over_budget = True
                    break
                if max_seconds is not None and perf_counter() - start > max_seconds:
                    outcome = ChaseOutcome.TIME_BUDGET_EXCEEDED
                    over_budget = True
                    break
            rounds += 1
            if probe is not None:
                probe.end_round(
                    round_delta,
                    considered - considered_before,
                    fired - fired_before,
                    created - created_before,
                    nulls_invented=store.null_count() - nulls_before,
                    index_builds=store.index_builds - builds_before,
                )
                # The next round's frontier is exactly the rows this
                # round appended past its size watermark.
                round_delta = len(store) - size_before
            if over_budget:
                break
            if round_hook is not None:
                # marks still delimits this round's appended rows — the
                # exact frontier a checkpoint must freeze.
                round_hook(rounds, store, marks, (considered, fired, created))
            if len(store) == size_before:
                outcome = ChaseOutcome.TERMINATED
                break
            pending = None

        statistics.rounds = rounds
        statistics.triggers_considered = considered
        statistics.triggers_applied = fired
        statistics.atoms_created = created
        statistics.wall_seconds = time.perf_counter() - start
        if profiler is not None:
            # The driver window closes *before* observe_store: the
            # posting-memory sweep is O(store) profiler bookkeeping,
            # not driver time to hold attribution accountable for.
            driver_end = perf_counter()
            if apply_slot >= 0:
                p_seconds[apply_slot] += driver_end - apply_start
                p_nulls[apply_slot] += store.null_count() - seg_nulls
                seg = considered - seg_considered
                hits = fired - seg_fired
                p_considered[apply_slot] += seg
                p_fired[apply_slot] += hits
                p_pruned[apply_slot] += seg - hits
                p_facts[apply_slot] += created - seg_created
            profiler.add_rule_seconds(prof_slots, enum_seconds)
            profiler.observe_store(store)
            profiler.finish_run(
                driver_end - driver_start,
                setup_seconds=driver_start - start,
                engine="store",
            )
        return ChaseResult(
            _store=store,
            _atom_count=len(store),
            terminated=outcome is ChaseOutcome.TERMINATED,
            outcome=outcome,
            statistics=statistics,
            max_depth=store.max_depth(),
            database_size=database_size,
            derivation=(),
            depth_truncated=False,
            telemetry=probe.as_dict() if probe is not None else None,
            profile=profiler.as_dict() if profiler is not None else None,
            resumed=resumed,
            base_rounds=base_rounds,
        )

    # -- trigger enumeration -----------------------------------------------------

    def _collect_triggers(
        self, instance: Instance, delta: Sequence[Atom], first_round: bool
    ) -> Iterator[Trigger]:
        """Enumerate candidate triggers, semi-naively after the first round.

        This is the legacy (``compiled=False``) path: it rescans every
        (rule, body-atom) pair against the round's delta with the
        reference homomorphism search.  In the first round every body
        homomorphism is considered.  In later rounds only triggers whose
        body image uses at least one atom from ``delta`` (the atoms
        derived in the previous round) can be new, so each body atom is
        forced onto each delta atom in turn.
        """
        if first_round:
            for tgd in self.tgds:
                for substitution in find_homomorphisms_reference(tgd.body, instance):
                    yield Trigger.from_substitution(tgd, substitution)
            return
        delta_by_predicate: Dict = {}
        for a in delta:
            delta_by_predicate.setdefault(a.predicate, []).append(a)
        seen: Set = set()
        for tgd in self.tgds:
            for index, body_atom in enumerate(tgd.body):
                for forced in delta_by_predicate.get(body_atom.predicate, ()):
                    for substitution in find_homomorphisms_with_forced_atom_reference(
                        tgd.body, instance, index, forced
                    ):
                        trigger = Trigger.from_substitution(tgd, substitution)
                        key = (tgd.rule_id, trigger.homomorphism)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield trigger
