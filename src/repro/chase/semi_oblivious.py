"""The semi-oblivious chase (Section 3).

The semi-oblivious chase identifies two triggers ``(σ, h)`` and
``(σ, g)`` whenever ``h`` and ``g`` agree on the frontier of ``σ``: the
nulls they invent carry the same label, so their results coincide and
only one of them ever fires.  Its result ``chase(D, Σ)`` is unique
(independent of the derivation order) which is what makes the
termination problem well defined.
"""

from __future__ import annotations

from typing import List, Optional

from repro.model.atoms import Atom
from repro.model.instance import Database, Instance
from repro.model.tgd import TGDSet
from repro.chase.engine import BaseChaseEngine, ChaseBudget, ChaseResult
from repro.chase.plan import CompiledRule
from repro.chase.trigger import Trigger


class SemiObliviousChase(BaseChaseEngine):
    """Semi-oblivious chase engine: trigger identity is ``(σ, h|fr(σ))``."""

    uses_frontier_identity = True
    supports_store_engine = True

    def trigger_key(self, trigger: Trigger):
        return trigger.frontier_key()

    def is_active(self, trigger: Trigger, instance: Instance) -> bool:
        return trigger.is_active_semi_oblivious(instance)

    def trigger_result(self, trigger: Trigger) -> List[Atom]:
        return trigger.result()

    def evaluate(
        self, instance: Instance, rule: CompiledRule, binding
    ) -> Optional[List[Atom]]:
        return self._evaluate_by_containment(instance, rule, binding)

    # Class-level alias, not a wrapper def: store_evaluate runs once
    # per considered trigger, so the extra frame would be measurable.
    store_evaluate = BaseChaseEngine._store_evaluate_by_containment


def semi_oblivious_chase(
    database: Database,
    tgds: TGDSet,
    budget: Optional[ChaseBudget] = None,
    record_derivation: bool = True,
    compiled: bool = True,
    engine: Optional[str] = None,
    resume_from: Optional[object] = None,
    database_size: Optional[int] = None,
    probe: Optional[object] = None,
    profile: Optional[object] = None,
    round_hook: Optional[object] = None,
    checkpoint: Optional[object] = None,
) -> ChaseResult:
    """Run the semi-oblivious chase of ``database`` w.r.t. ``tgds``.

    Returns a :class:`ChaseResult`; ``result.terminated`` is True iff
    the chase reached a fixpoint within the budget, in which case
    ``result.instance`` is ``chase(D, Σ)`` and ``result.max_depth`` is
    ``maxdepth(D, Σ)``.  ``engine`` picks the implementation
    (``"store"``, ``"plans"`` or ``"legacy"``); ``compiled=False`` is
    shorthand for the legacy rescan engine (benchmark baseline).

    ``database`` may also be a pre-seeded
    :class:`~repro.model.store.FactStore` (store engine only), and
    ``resume_from`` a snapshot of a previously *terminated* run over a
    sub-database: the chase then replays incrementally from the new
    facts — because the semi-oblivious result is unique, the resumed
    instance equals the cold ``chase(D ∪ Δ, Σ)`` exactly.  See
    :meth:`~repro.chase.engine.BaseChaseEngine.run`.
    """
    chase_engine = SemiObliviousChase(
        tgds, budget=budget, record_derivation=record_derivation, compiled=compiled,
        engine=engine, probe=probe, profile=profile, round_hook=round_hook,
    )
    return chase_engine.run(
        database,
        resume_from=resume_from,
        database_size=database_size,
        checkpoint=checkpoint,
    )
