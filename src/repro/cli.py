"""Command-line interface.

Four subcommands mirror the library's main entry points::

    python -m repro classify  ontology.rules
    python -m repro decide    ontology.rules database.facts [--method auto|syntactic|naive|ucq]
    python -m repro chase     ontology.rules database.facts [--variant semi-oblivious|restricted|oblivious]
                                                            [--max-atoms N] [--max-rounds N]
                                                            [--max-depth N] [--max-seconds S]
                                                            [--format text|json] [--output FILE]
                                                            [--engine store|plans|legacy]
                                                            [--resume-from SNAP] [--save-snapshot FILE]
                                                            [--trace FILE] [--profile [--top K]]
                                                            [--conformance]
    python -m repro snapshot  dump database.facts --output FILE [--rules R [--variant V]]
    python -m repro snapshot  inspect FILE
    python -m repro snapshot  restore FILE [--output facts.txt]
    python -m repro batch     manifest.jsonl [--workers N] [--cache FILE] [--output FILE]
                                             [--timeout S] [--materialize] [--incremental]
                                             [--trace FILE] [--profile] [--conformance]
    python -m repro serve     [--host H] [--port P] [--workers N] [--cache FILE]
                              [--cache-max-entries N] [--queue-depth N] [--ttl S]
                              [--timeout S] [--materialize] [--metrics]
                              [--access-log FILE [--access-log-max-bytes N]]
                              [--trace FILE] [--conformance]
    python -m repro trace     inspect FILE [--top N] [--top-rules]
    python -m repro profile   FILE [--top K]

``serve`` starts the long-running chase service daemon: an HTTP job
server (``POST /jobs``, ``POST /batches``, ``GET /jobs/<id>``,
streaming ``GET /batches/<id>``, ``GET /healthz``, ``GET /stats``,
``POST /shutdown``) over the batch runtime — see
:mod:`repro.service`.  It runs until interrupted or shut down over
HTTP, draining accepted jobs first.

``--profile`` attributes wall time, triggers, facts and nulls to
individual rules (``repro profile FILE`` re-renders a saved payload,
``trace inspect --top-rules`` ranks from a trace file);
``--conformance`` checks terminated runs against the paper's
size/depth bounds for their TGD class.

Three maintenance subcommands regenerate the benchmark reports, and
each run appends a row set to ``benchmarks/history.jsonl``
(``--history PATH`` / ``--no-history``) for regression tracking::

    python -m repro bench-engine  [--output BENCH_engine.json]  [--repeats N]
    python -m repro bench-runtime [--output BENCH_runtime.json] [--jobs N] [--workers N]
    python -m repro bench-service [--output BENCH_service.json] [--jobs N] [--clients N]
    python -m repro bench history [--path FILE] [--limit N] [--experiment E]
    python -m repro bench compare [--path FILE] [--baseline SHA] [--threshold F]
                                  [--experiment E] [--fail-on-regression]

Rule files contain one TGD per line (``R(x, y) -> exists z . S(y, z)``),
database files one fact per line (``R(a, b).``); ``%`` and ``#`` start
comments.  ``decide`` exits with status 0 when the chase terminates,
1 when it does not, and 2 when the method could not decide.  ``batch``
consumes a JSONL manifest (one job per line, see
:mod:`repro.runtime.jobs`) and emits one JSONL result per job with
outcome, sizes, timings, and cache/budget provenance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.chase import VARIANT_RUNNERS as _VARIANTS
from repro.chase.engine import ENGINES as _ENGINES
from repro.chase.engine import ChaseBudget
from repro.core.bounds import depth_bound, magnitude, size_bound_factor
from repro.core.classify import TGDClass, classify
from repro.core.decision import decide_termination
from repro.model.parser import parse_database, parse_program
from repro.model.serialization import instance_to_text


def _load_program(path: str):
    return parse_program(Path(path).read_text(), name=Path(path).stem)


def _load_database(path: str):
    return parse_database(Path(path).read_text())


def _cmd_classify(args: argparse.Namespace) -> int:
    program = _load_program(args.rules)
    tgd_class = classify(program)
    print(f"class: {tgd_class.value}")
    print(f"rules: {len(program)}")
    print(f"schema: {len(program.schema())} predicates, max arity {program.arity()}")
    if tgd_class is not TGDClass.ARBITRARY:
        print(f"depth bound d_C(Sigma): {magnitude(depth_bound(program))}")
        print(f"size bound factor f_C(Sigma): {magnitude(size_bound_factor(program))}")
    return 0


def _cmd_decide(args: argparse.Namespace) -> int:
    program = _load_program(args.rules)
    database = _load_database(args.database)
    verdict = decide_termination(database, program, method=args.method)
    answer = {True: "terminates", False: "does not terminate", None: "unknown"}[verdict.terminates]
    print(f"chase of {args.database} w.r.t. {args.rules}: {answer}")
    print(f"method: {verdict.method.value} (class {verdict.tgd_class.value})")
    if verdict.terminates:
        # The f_C(Σ) bound only exists for SL/L/G; an arbitrary set can
        # still be decided terminating (e.g. by the naive method).
        if verdict.tgd_class.has_paper_bounds:
            print(f"size bound: {magnitude(len(database) * size_bound_factor(program))}")
        return 0
    return 1 if verdict.terminates is False else 2


def _cmd_chase(args: argparse.Namespace) -> int:
    program = _load_program(args.rules)
    database = _load_database(args.database)
    runner = _VARIANTS[args.variant]
    analysis = None
    if args.analyze:
        from repro.core.termination_analysis import DIVERGING, analyze_termination

        analysis = analyze_termination(database, program, args.variant)
        print(
            f"analysis: {analysis.verdict}"
            + (f" via {analysis.method}" if analysis.method else "")
            + (
                f", depth bound {analysis.depth_bound}"
                if analysis.depth_bound is not None and analysis.depth_bound.bit_length() <= 64
                else ""
            ),
            file=sys.stderr,
        )
        if analysis.verdict == DIVERGING:
            print(
                f"not chasing: the {args.variant} chase provably diverges on this "
                "input (pass no --analyze to run it under an explicit budget)",
                file=sys.stderr,
            )
            if args.format == "json":
                document = {
                    "status": "diverging",
                    "analysis": analysis.as_dict(),
                    "summary": None,
                    "wall_seconds": 0.0,
                    "instance": None,
                }
                print(json.dumps(document, sort_keys=True))
            return 0
    budget = ChaseBudget(
        max_atoms=args.max_atoms,
        max_rounds=args.max_rounds,
        max_depth=args.max_depth,
        max_seconds=args.max_seconds,
    )
    engine = "legacy" if args.legacy_engine else args.engine
    if args.resume_from and engine != "store":
        print(
            "--resume-from requires the store engine (use --engine store)",
            file=sys.stderr,
        )
        return 2
    resume_from = None
    if args.resume_from:
        from repro.model.store import inspect_snapshot

        resume_from = Path(args.resume_from).read_bytes()
        if inspect_snapshot(resume_from).get("complete") is not True:
            print(
                f"{args.resume_from} is not a terminated chase-result snapshot; "
                "resuming from it would silently drop pending triggers "
                "(use 'snapshot dump --rules' or 'chase --save-snapshot' on a "
                "run that terminated)",
                file=sys.stderr,
            )
            return 2
    probe = None
    if args.trace:
        from repro.obs.probe import ChaseProbe

        probe = ChaseProbe()
    profiler = None
    if args.profile:
        from repro.obs.profile import RuleProfiler

        profiler = RuleProfiler()
    result = runner(
        database,
        program,
        budget=budget,
        record_derivation=False,
        engine=engine,
        resume_from=resume_from,
        probe=probe,
        profile=profiler,
    )
    profile_payload = result.profile
    if args.trace:
        from repro.obs.trace import TraceRecorder

        recorder = TraceRecorder(process_name="repro-chase")
        telemetry = result.telemetry or {}
        # Round wall times are relative; lay the sampled rounds out
        # sequentially so the trace shows where the run spent its time.
        cursor = 0.0
        for sample in telemetry.get("samples", []):
            wall = float(sample.get("wall_seconds", 0.0))
            recorder.add_span(
                "chase.round", cursor, cursor + wall, tid="chase", args=dict(sample)
            )
            cursor += wall
        run_args = {
            "rounds": result.statistics.rounds,
            "size": result.size,
            "terminated": result.terminated,
            "sample_stride": telemetry.get("sample_stride"),
        }
        if profile_payload is not None:
            # Embedded so 'trace inspect --top-rules' can rank rules
            # straight from the trace file.
            run_args["profile"] = profile_payload
        recorder.add_span(
            "chase.run",
            0.0,
            result.statistics.wall_seconds,
            tid="chase",
            args=run_args,
        )
        events = recorder.export_jsonl(args.trace)
        print(f"trace: {events} events -> {args.trace}", file=sys.stderr)
    if args.save_snapshot:
        blob = result.store_snapshot()
        if blob is None:
            print(
                "--save-snapshot requires the store engine (use --engine store)",
                file=sys.stderr,
            )
            return 2
        if not result.terminated:
            print(
                f"not saving a snapshot of a budget-stopped run "
                f"({result.outcome.value}): it is an incomplete prefix that "
                "--resume-from would refuse anyway",
                file=sys.stderr,
            )
            return 2
        Path(args.save_snapshot).write_bytes(blob)
        print(f"snapshot: {len(blob)} bytes -> {args.save_snapshot}", file=sys.stderr)
    status = "terminated" if result.terminated else f"stopped ({result.outcome.value})"
    print(
        f"{status}: {result.size} atoms, max depth {result.max_depth}, "
        f"{result.statistics.triggers_applied} trigger applications, "
        f"{result.statistics.wall_seconds:.3f}s",
        file=sys.stderr,
    )
    if profile_payload is not None:
        from repro.obs.profile import format_profile_table

        print(format_profile_table(profile_payload, top=args.top), file=sys.stderr)
    summary = result.summary()
    if args.conformance:
        from repro.obs.conformance import conformance_report

        block = conformance_report(summary, program)
        if block is None:
            print(
                "conformance: no paper bounds for this TGD class",
                file=sys.stderr,
            )
        else:
            summary["conformance"] = block
            verdict = (
                f"VIOLATED ({', '.join(block['violations'])})"
                if block["violations"]
                else "within bounds"
            )
            print(
                f"conformance: class {block['class']}, "
                f"size utilization {block['size_utilization']}, "
                f"depth utilization {block['depth_utilization']} — {verdict}",
                file=sys.stderr,
            )
    text = instance_to_text(result.instance)
    if args.output:
        Path(args.output).write_text(text + "\n")
    if args.format == "json":
        document = {
            "status": status,
            "summary": summary,
            "wall_seconds": round(result.statistics.wall_seconds, 6),
            "instance": None if args.output else text,
        }
        if analysis is not None:
            document["analysis"] = analysis.as_dict()
        print(json.dumps(document, sort_keys=True))
    elif not args.output:
        print(text)
    return 0 if result.terminated else 1


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.model.serialization import instance_to_text
    from repro.model.store import FactStore, inspect_snapshot
    from repro.runtime.jobs import encode_database_snapshot

    if args.action == "dump":
        database = _load_database(args.database)
        if args.rules:
            program = _load_program(args.rules)
            runner = _VARIANTS[args.variant]
            result = runner(database, program, record_derivation=False, engine="store")
            blob = result.store_snapshot()
            assert blob is not None  # engine="store" always carries a store
            status = "terminated" if result.terminated else result.outcome.value
            print(
                f"chased {len(database)} facts -> {result.size} atoms ({status})",
                file=sys.stderr,
            )
            if not result.terminated:
                print(
                    "warning: budget-stopped prefix — the snapshot is marked "
                    "incomplete and --resume-from will refuse it",
                    file=sys.stderr,
                )
        else:
            blob = encode_database_snapshot(database)
        Path(args.output).write_bytes(blob)
        print(f"wrote {len(blob)} bytes to {args.output}", file=sys.stderr)
        return 0
    data = Path(args.snapshot).read_bytes()
    if args.action == "inspect":
        header = inspect_snapshot(data)
        null_count = sum(1 for t in header["terms"] if not isinstance(t, str))
        document = {
            "bytes": len(data),
            "complete": header.get("complete"),
            "predicates": {
                f"{name}/{arity}": count
                for (name, arity), count in zip(header["predicates"], header["facts"])
            },
            "facts": header["size"],
            "terms": len(header["terms"]),
            "nulls": null_count,
            "max_depth": header["max_depth"],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    # restore: decode back to fact text.
    store = FactStore.restore(data)
    text = instance_to_text(store.to_instance())
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"restored {len(store)} facts to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _arm_faults(args: argparse.Namespace):
    """Honour ``--inject-faults`` (inline JSON or ``@plan.json``).

    Publishes the plan through the ``REPRO_FAULTS`` environment
    variable — the same channel forked pool workers inherit it by —
    and returns the armed injector (or ``None`` when faults are off).
    """
    import os

    from repro.runtime.faults import ENV_VAR, FaultPlanError, get_injector, reset_injector

    plan_text = getattr(args, "inject_faults", None)
    if plan_text:
        os.environ[ENV_VAR] = plan_text
        reset_injector()
    injector = get_injector()
    if plan_text and not injector.enabled:
        raise FaultPlanError(f"--inject-faults parsed to an empty plan: {plan_text!r}")
    return injector if injector.enabled else None


def _fault_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--inject-faults",
        metavar="PLAN",
        help="arm the deterministic fault-injection layer: inline JSON "
        '({"faults": [{"point": "worker.round", "action": "kill", '
        '"at_round": 3}], "seed": 1, ...}) or @path to a plan file; '
        "equivalently set the REPRO_FAULTS environment variable",
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.runtime import BatchExecutor, ResultCache, read_manifest_lenient
    from repro.runtime.jobs import ManifestError

    injector = _arm_faults(args)
    items = read_manifest_lenient(args.manifest)
    jobs = [item for item in items if not isinstance(item, ManifestError)]
    bad = [item for item in items if isinstance(item, ManifestError)]
    cache = ResultCache(args.cache) if args.cache else None
    if args.incremental and cache is None:
        print(
            "--incremental needs --cache to hold resume snapshots; running cold",
            file=sys.stderr,
        )
    executor_kwargs = {}
    if args.analyze:
        from repro.core.termination_analysis import TerminationAnalyzer
        from repro.runtime.budget_policy import BudgetPolicy

        executor_kwargs["policy"] = BudgetPolicy(analyzer=TerminationAnalyzer())
    tracer = None
    if args.trace:
        from repro.obs.trace import TraceRecorder

        tracer = TraceRecorder(process_name="repro-batch")
    checkpoint_dir = args.checkpoint_dir
    if args.checkpoint_every_rounds is not None and checkpoint_dir is None:
        import tempfile

        checkpoint_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
    if checkpoint_dir is not None:
        Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
    executor = BatchExecutor(
        workers=args.workers,
        cache=cache,
        materialize=args.materialize,
        per_job_timeout=args.timeout,
        engine=args.engine,
        incremental=args.incremental,
        tracer=tracer,
        profile=args.profile,
        conformance=args.conformance,
        max_retries=args.max_retries,
        checkpoint_every_rounds=args.checkpoint_every_rounds,
        checkpoint_dir=checkpoint_dir,
        stuck_timeout_seconds=args.stuck_timeout,
        **executor_kwargs,
    )
    if cache is not None:
        cache.tracer = tracer
    out_handle = Path(args.output).open("w") if args.output else sys.stdout
    counts = {"ok": 0, "timeout": 0, "error": len(bad), "cached": 0}
    try:
        for entry in bad:
            row = {
                "id": entry.job_id,
                "status": "error",
                "outcome": None,
                "summary": None,
                "error": f"manifest line {entry.line_number}: {entry.error}",
            }
            out_handle.write(json.dumps(row, sort_keys=True) + "\n")
        for result in executor.run(jobs):
            counts[result.status] = counts.get(result.status, 0) + 1
            if result.cache_hit:
                counts["cached"] += 1
            out_handle.write(json.dumps(result.as_dict(), sort_keys=True) + "\n")
            out_handle.flush()
    finally:
        if args.output:
            out_handle.close()
    if tracer is not None:
        events = tracer.export_jsonl(args.trace)
        print(f"trace: {events} events -> {args.trace}", file=sys.stderr)
    print(
        f"{len(items)} jobs: {counts['ok']} ok ({counts['cached']} from cache), "
        f"{counts['timeout']} timed out, {counts['error']} failed"
        + (f"; cache {cache.stats()}" if cache is not None else ""),
        file=sys.stderr,
    )
    if injector is not None:
        print(
            f"faults: {injector.fired_total()} injected {dict(injector.fired_counts())}; "
            f"recovery {executor.fault_stats}",
            file=sys.stderr,
        )
    return 1 if counts["error"] else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.runtime.cache import ResultCache
    from repro.service import ChaseService

    _arm_faults(args)
    cache = ResultCache(args.cache or None, max_entries=args.cache_max_entries)
    checkpoint_dir = args.checkpoint_dir
    if args.checkpoint_every_rounds is not None and checkpoint_dir is None:
        import tempfile

        checkpoint_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
    if checkpoint_dir is not None:
        Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
    service = ChaseService(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.queue_depth,
        cache=cache,
        materialize=args.materialize,
        per_job_timeout=args.timeout if args.timeout and args.timeout > 0 else None,
        ttl_seconds=args.ttl,
        admission_analysis=args.admission_analysis,
        metrics=args.metrics,
        access_log=args.access_log,
        access_log_max_bytes=args.access_log_max_bytes,
        trace_path=args.trace,
        conformance=args.conformance,
        checkpoint_every_rounds=args.checkpoint_every_rounds,
        checkpoint_dir=checkpoint_dir,
    )
    service.start()

    def _sigterm(_signum, _frame) -> None:
        # Graceful drain: running jobs finish (checkpointing per the
        # configured cadence), queued-but-unstarted jobs go back to the
        # registry as requeueable instead of being dropped.  The actual
        # stop runs off the signal frame so the handler returns fast.
        print("SIGTERM: finishing running jobs, requeueing the rest...", file=sys.stderr)
        threading.Thread(
            target=service.stop, kwargs={"requeue_queued": True},
            name="chase-sigterm", daemon=True,
        ).start()

    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    print(
        f"chase service listening on {service.url} "
        f"({args.workers} workers, queue depth {args.queue_depth}"
        + (f", cache {args.cache}" if args.cache else ", in-memory cache")
        + ")",
        file=sys.stderr,
    )
    try:
        while not service.wait_stopped(0.5):
            pass
    except KeyboardInterrupt:
        print("interrupt: draining accepted jobs...", file=sys.stderr)
        service.stop()
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
    print(f"stopped; final stats: {service.scheduler.stats()}", file=sys.stderr)
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    from repro.runtime.cache import verify_spill

    target = Path(args.cache_file)
    if not target.exists():
        print(f"error: no such file: {target}", file=sys.stderr)
        return 2
    report = verify_spill(target, repair=args.repair)
    print(json.dumps(report, sort_keys=True))
    damaged = report["crc_mismatch"] + report["torn"] + report["corrupt"]
    if damaged and not args.repair:
        print(
            f"{target}: {damaged} damaged line(s); re-run with --repair to drop them",
            file=sys.stderr,
        )
        return 1
    if report["repaired"]:
        print(f"{target}: repaired ({damaged} damaged line(s) dropped)", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import load_trace, summarize_trace

    try:
        events = load_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.top_rules:
        from repro.obs.profile import format_profile_table

        profiles = [
            event["args"]["profile"]
            for event in events
            if isinstance(event.get("args"), dict)
            and isinstance(event["args"].get("profile"), dict)
        ]
        if not profiles:
            print(
                "no embedded rule profiles in this trace "
                "(record one with 'chase --trace FILE --profile')",
                file=sys.stderr,
            )
            return 2
        for profile in profiles:
            print(format_profile_table(profile, top=args.top or 10))
        return 0
    print(json.dumps(summarize_trace(events, top=args.top), indent=2, sort_keys=True))
    return 0


def _profile_payloads(document: object) -> list:
    """Every profile payload reachable in a loaded JSON document.

    Accepts a raw ``RuleProfiler.as_dict()`` payload, a ``chase
    --format json`` document, a run summary, or a batch/bench result
    row — anywhere a ``profile`` block can end up.
    """
    if not isinstance(document, dict):
        return []
    if "rules" in document and "attributed_seconds" in document:
        return [document]  # a raw profile payload
    found = []
    profile = document.get("profile")
    if isinstance(profile, dict):
        found.append(profile)
    summary = document.get("summary")
    if isinstance(summary, dict) and isinstance(summary.get("profile"), dict):
        found.append(summary["profile"])
    return found


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import format_profile_table

    try:
        text = Path(args.file).read_text()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    profiles = []
    try:
        profiles = _profile_payloads(json.loads(text))
    except json.JSONDecodeError:
        # JSONL (batch results): scan each row for profile blocks.
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                profiles.extend(_profile_payloads(json.loads(line)))
            except json.JSONDecodeError:
                continue
    if not profiles:
        print(
            f"no profile payloads in {args.file} "
            "(produce one with 'chase --profile --format json')",
            file=sys.stderr,
        )
        return 2
    for index, profile in enumerate(profiles):
        if index:
            print()
        print(format_profile_table(profile, top=args.top))
    return 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    from repro.obs.benchhist import format_history, load_history

    entries = load_history(args.path)
    if args.experiment:
        entries = [e for e in entries if e.get("experiment") == args.experiment]
    if not entries:
        print(f"no history entries in {args.path}", file=sys.stderr)
        return 2
    print(format_history(entries, limit=args.limit))
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.obs.benchhist import compare_entries, format_comparison, load_history

    entries = load_history(args.path)
    if args.experiment:
        entries = [e for e in entries if e.get("experiment") == args.experiment]
    by_experiment: dict = {}
    for entry in entries:
        by_experiment.setdefault(entry.get("experiment"), []).append(entry)
    if not by_experiment:
        print(f"no history entries in {args.path}", file=sys.stderr)
        return 2
    regressed = False
    compared = False
    for experiment in sorted(by_experiment, key=str):
        history = by_experiment[experiment]
        current = history[-1]
        if args.baseline:
            candidates = [
                e
                for e in history[:-1]
                if str(e.get("git_sha", "")).startswith(args.baseline)
            ]
            if not candidates:
                print(
                    f"{experiment}: no baseline entry matching "
                    f"{args.baseline!r}; skipping",
                    file=sys.stderr,
                )
                continue
            baseline = candidates[-1]
        elif len(history) >= 2:
            baseline = history[-2]
        else:
            print(f"{experiment}: only one entry, nothing to compare", file=sys.stderr)
            continue
        comparison = compare_entries(baseline, current, threshold=args.threshold)
        compared = True
        print(format_comparison(comparison))
        if comparison["regressions"]:
            regressed = True
    if not compared:
        return 2
    if regressed and args.fail_on_regression:
        return 1
    return 0


def _cmd_bench_service(args: argparse.Namespace) -> int:
    from repro.bench.drivers import format_table, service_benchmark_rows, write_service_report

    rows, summary = service_benchmark_rows(
        job_count=args.jobs, clients=args.clients, workers=args.workers, seed=args.seed
    )
    write_service_report(
        path=args.output, rows=rows, summary=summary, history_path=_history_path(args)
    )
    print(format_table(rows))
    print(
        f"\n{summary['requests_per_second']} req/s with {summary['clients']} clients, "
        f"p50 {summary['latency_p50_ms']}ms / p95 {summary['latency_p95_ms']}ms, "
        f"cache-hit speedup {summary['cache_hit_speedup']}x, "
        f"byte-identical vs direct: {summary['byte_identical_vs_direct']}, "
        f"dedup single execution: {summary['dedup_single_execution']}",
        file=sys.stderr,
    )
    print(f"wrote {args.output}", file=sys.stderr)
    healthy = (
        summary["byte_identical_vs_direct"]
        and summary["warm_hits_byte_identical"]
        and summary["dedup_single_execution"]
        # The ≥10x cache-hit target is an acceptance gate at report
        # scale; smoke runs (CI's --jobs 40) only gate correctness.
        and (summary["cache_speedup_target_met"] or args.jobs < 100)
    )
    return 0 if healthy else 1


def _cmd_bench_engine(args: argparse.Namespace) -> int:
    from repro.bench.drivers import (
        engine_benchmark_rows,
        engine_memory_row,
        format_table,
        incremental_rechase_row,
        snapshot_roundtrip_row,
        write_engine_report,
    )

    rows = engine_benchmark_rows(
        repeats=args.repeats, quick=args.quick, layout=args.layout
    )
    if not args.quick:
        rows.append(snapshot_roundtrip_row(repeats=args.repeats))
        rows.append(incremental_rechase_row(repeats=args.repeats))
        rows.append(engine_memory_row())
    report = write_engine_report(
        path=args.output, rows=rows, quick=args.quick, history_path=_history_path(args)
    )
    print(format_table(rows))
    summary = report["summary"]
    gates = ""
    if not args.quick:
        if summary["min_big_sl_l_layout_speedup"] is not None:
            gates += (
                f"min big SL/L layout speedup (arrays vs sets): "
                f"{summary['min_big_sl_l_layout_speedup']}x, "
                f"min restricted-heavy layout speedup: "
                f"{summary['min_restricted_heavy_layout_speedup']}x, "
            )
        gates += (
            f"incremental re-chase speedup: {summary['incremental_speedup']}x, "
            f"snapshot {summary['snapshot_encode_mb_s']}/"
            f"{summary['snapshot_decode_mb_s']} MB/s enc/dec, "
        )
    print(
        f"\nmin speedup vs legacy: {summary['min_speedup_vs_legacy']}x, "
        f"{gates}all runs equivalent: {summary['all_equivalent']}",
        file=sys.stderr,
    )
    print(f"wrote {args.output}", file=sys.stderr)
    if not summary["all_equivalent"]:
        return 1
    if args.quick:
        # CI perf smoke: the store engine must stay ≥ 1.5× over the
        # legacy rescan, and the arrays layout must not regress below
        # the sets layout, on the smoke workloads.
        floor = summary["min_speedup_vs_legacy"]
        if floor is None or floor < 1.5:
            print(
                f"perf smoke FAILED: store-vs-legacy speedup {floor}x < 1.5x",
                file=sys.stderr,
            )
            return 1
        layout_floor = summary["min_layout_speedup"]
        if layout_floor is not None and layout_floor < 1.0:
            print(
                f"perf smoke FAILED: arrays-vs-sets layout speedup "
                f"{layout_floor}x < 1.0x",
                file=sys.stderr,
            )
            return 1
        # The overhead gates read the *floor* ratios (min across the
        # interleaved rounds): a genuine per-trigger cost shows up in
        # every round so it cannot hide from the min, while a noisy CI
        # neighbour slowing any single round cannot flake the gate.
        overhead = summary.get("max_telemetry_overhead_floor")
        if overhead is not None and overhead > 1.10:
            print(
                f"perf smoke FAILED: per-round telemetry costs "
                f"{overhead}x the uninstrumented store run (gate: 1.10x)",
                file=sys.stderr,
            )
            return 1
        profile_overhead = summary.get("max_profile_overhead_floor")
        if profile_overhead is not None and profile_overhead > 1.10:
            print(
                f"perf smoke FAILED: per-rule profiling costs "
                f"{profile_overhead}x the unprofiled store run (gate: 1.10x)",
                file=sys.stderr,
            )
            return 1
        return 0
    healthy = (
        summary["big_sl_l_target_met"]
        and summary["restricted_heavy_target_met"]
        and summary["big_sl_l_layout_target_met"] is not False
        and summary["restricted_heavy_layout_target_met"] is not False
        and summary["incremental_target_met"]
    )
    return 0 if healthy else 1


def _cmd_bench_runtime(args: argparse.Namespace) -> int:
    from repro.bench.drivers import format_table, runtime_benchmark_rows, write_runtime_report

    rows, summary = runtime_benchmark_rows(
        job_count=args.jobs, workers=args.workers, repeats=args.repeats, seed=args.seed
    )
    write_runtime_report(
        path=args.output, rows=rows, summary=summary, history_path=_history_path(args)
    )
    print(format_table(rows))
    print(
        f"\npool speedup: {summary['pool_speedup']}x over serial "
        f"({summary['workers']} workers, {summary['cpu_count']} cpus), "
        f"cache replay byte-identical: {summary['cache_hits_byte_identical']}, "
        f"auto-budgeted SL/L within budget: {summary['auto_budgeted_sl_l_within_budget']}",
        file=sys.stderr,
    )
    print(f"wrote {args.output}", file=sys.stderr)
    healthy = (
        summary["cache_hits_byte_identical"]
        # byte-identity is vacuous if nothing hit; require full replay
        and summary["all_cacheable_jobs_hit"]
        and summary["auto_budgeted_sl_l_within_budget"]
        and summary["pool_deterministic"]
    )
    return 0 if healthy else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Non-uniformly terminating semi-oblivious chase toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    classify_parser = subparsers.add_parser("classify", help="classify an ontology (SL/L/G/TGD)")
    classify_parser.add_argument("rules", help="file with one TGD per line")
    classify_parser.set_defaults(handler=_cmd_classify)

    decide_parser = subparsers.add_parser("decide", help="decide non-uniform chase termination")
    decide_parser.add_argument("rules")
    decide_parser.add_argument("database")
    decide_parser.add_argument(
        "--method", choices=["auto", "syntactic", "naive", "ucq"], default="auto"
    )
    decide_parser.set_defaults(handler=_cmd_decide)

    chase_parser = subparsers.add_parser("chase", help="materialise the chase")
    chase_parser.add_argument("rules")
    chase_parser.add_argument("database")
    chase_parser.add_argument("--variant", choices=sorted(_VARIANTS), default="semi-oblivious")
    chase_parser.add_argument("--max-atoms", type=int, default=1_000_000)
    chase_parser.add_argument("--max-rounds", type=int, default=1_000_000)
    chase_parser.add_argument(
        "--max-depth", type=int, default=None, help="stop once a null deeper than N appears"
    )
    chase_parser.add_argument(
        "--max-seconds", type=float, default=None, help="wall-clock budget for the run"
    )
    chase_parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="print the materialised instance as text (default) or a JSON document",
    )
    chase_parser.add_argument("--output", help="write the materialised instance to a file")
    chase_parser.add_argument(
        "--engine",
        choices=list(_ENGINES),
        default="store",
        help="engine implementation: interned fact store (default), "
        "term-level compiled plans, or the legacy rescan",
    )
    chase_parser.add_argument(
        "--legacy-engine",
        action="store_true",
        help="shorthand for --engine legacy (kept for compatibility)",
    )
    chase_parser.add_argument(
        "--resume-from",
        help="resume incrementally from a store snapshot of a previous "
        "terminated run over a sub-database (store engine only); pass the "
        "full grown database as the facts file",
    )
    chase_parser.add_argument(
        "--save-snapshot",
        help="write the result's store snapshot here (store engine only)",
    )
    chase_parser.add_argument(
        "--trace",
        help="record per-round telemetry and write a Chrome-trace JSONL "
        "file here (view with 'trace inspect' or Perfetto); the JSON "
        "summary gains a 'telemetry' key",
    )
    chase_parser.add_argument(
        "--analyze",
        action="store_true",
        help="run static termination analysis first: report the verdict "
        "(terminating/diverging/undetermined) for the chosen variant, skip "
        "the chase entirely when it provably diverges, and include the "
        "analysis in --format json output",
    )
    chase_parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute wall time, triggers, facts and nulls to individual "
        "rules; prints a top-K table and adds a 'profile' key to the "
        "--format json summary (and to the --trace file)",
    )
    chase_parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows in the --profile table (default 10)",
    )
    chase_parser.add_argument(
        "--conformance",
        action="store_true",
        help="compare the run against the paper's size/depth bounds for "
        "its TGD class: prints the utilizations and adds a 'conformance' "
        "key to the --format json summary",
    )
    chase_parser.set_defaults(handler=_cmd_chase)

    snapshot_parser = subparsers.add_parser(
        "snapshot",
        help="dump, inspect, or restore fact-store snapshots",
    )
    snapshot_subparsers = snapshot_parser.add_subparsers(dest="action", required=True)
    snapshot_dump = snapshot_subparsers.add_parser(
        "dump", help="encode a database (or its chase result) as a snapshot"
    )
    snapshot_dump.add_argument("database", help="file with one fact per line")
    snapshot_dump.add_argument("--output", required=True, help="snapshot file to write")
    snapshot_dump.add_argument(
        "--rules", help="chase the database with these rules first and snapshot the result"
    )
    snapshot_dump.add_argument(
        "--variant", choices=sorted(_VARIANTS), default="semi-oblivious"
    )
    snapshot_dump.set_defaults(handler=_cmd_snapshot)
    snapshot_inspect = snapshot_subparsers.add_parser(
        "inspect", help="print a snapshot's header (predicates, sizes) as JSON"
    )
    snapshot_inspect.add_argument("snapshot", help="snapshot file")
    snapshot_inspect.set_defaults(handler=_cmd_snapshot)
    snapshot_restore = snapshot_subparsers.add_parser(
        "restore", help="decode a snapshot back to fact text"
    )
    snapshot_restore.add_argument("snapshot", help="snapshot file")
    snapshot_restore.add_argument("--output", help="write facts here instead of stdout")
    snapshot_restore.set_defaults(handler=_cmd_snapshot)

    batch_parser = subparsers.add_parser(
        "batch",
        help="run a JSONL manifest of chase jobs through the batch runtime",
    )
    batch_parser.add_argument("manifest", help="JSONL file, one job per line")
    batch_parser.add_argument(
        "--workers", type=int, default=1, help="process pool size (1 = serial, deterministic)"
    )
    batch_parser.add_argument("--cache", help="JSONL result cache file (created if missing)")
    batch_parser.add_argument("--output", help="write JSONL results here instead of stdout")
    batch_parser.add_argument(
        "--timeout", type=float, default=None, help="per-job wall-clock limit in seconds"
    )
    batch_parser.add_argument(
        "--materialize",
        action="store_true",
        help="include the materialised instance text in each result",
    )
    batch_parser.add_argument(
        "--engine",
        choices=list(_ENGINES),
        default=None,
        help="chase engine implementation for all jobs (default: store)",
    )
    batch_parser.add_argument(
        "--incremental",
        action="store_true",
        help="resume cache-missed jobs from cached snapshots of the same "
        "program over a sub-database (needs --cache; stores snapshots "
        "alongside summaries)",
    )
    batch_parser.add_argument(
        "--analyze",
        action="store_true",
        help="derive auto budgets with static termination analysis: provably "
        "diverging jobs get a clamped budget instead of the million-atom "
        "default, and each result row's budget provenance carries the verdict",
    )
    batch_parser.add_argument(
        "--trace",
        help="record job-lifecycle spans (admission, cache lookup, snapshot "
        "encode, execute, cache write) and write Chrome-trace JSONL here",
    )
    batch_parser.add_argument(
        "--profile",
        action="store_true",
        help="attach a per-rule attribution profile to every executed "
        "result's summary (inspect with 'repro profile RESULTS.jsonl')",
    )
    batch_parser.add_argument(
        "--conformance",
        action="store_true",
        help="stamp a paper-bound conformance block (observed size/depth "
        "vs the class's d_C/f_C bounds) into every SL/L/G result summary",
    )
    batch_parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="bounded re-executions of a job after a transient failure "
        "(crashed worker, injected fault); deterministic failures are "
        "never retried (default 2)",
    )
    batch_parser.add_argument(
        "--checkpoint-every-rounds",
        type=int,
        default=None,
        metavar="N",
        help="write a resumable checkpoint every N chase rounds so a "
        "retried job resumes from its last checkpoint instead of round 0 "
        "(semi-oblivious/oblivious jobs on the store engine)",
    )
    batch_parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for round checkpoints (default: a fresh temp dir "
        "when --checkpoint-every-rounds is set)",
    )
    batch_parser.add_argument(
        "--stuck-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="pool watchdog: recycle worker processes stuck on one job "
        "longer than this; the job retries (from its checkpoint, if any)",
    )
    _fault_flag(batch_parser)
    batch_parser.set_defaults(handler=_cmd_batch)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the chase service daemon (HTTP job server over the batch runtime)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8765, help="0 = ephemeral")
    serve_parser.add_argument("--workers", type=int, default=2, help="scheduler worker threads")
    serve_parser.add_argument("--cache", help="JSONL result cache file (created if missing)")
    serve_parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=10_000,
        help="LRU bound on in-memory cache entries",
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=64, help="admission control: max queued jobs"
    )
    serve_parser.add_argument(
        "--ttl", type=float, default=300.0, help="retention of finished job records (seconds)"
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-job wall-clock ceiling in seconds, bounding even hostile "
        "explicit budgets (0 disables; default 60)",
    )
    serve_parser.add_argument(
        "--materialize",
        action="store_true",
        help="include the materialised instance text in each result",
    )
    serve_parser.add_argument(
        "--admission-analysis",
        action="store_true",
        help="reject provably diverging programs at POST /jobs with a 422 "
        "and derive budgets with static termination analysis (POST /batches "
        "still accepts them under a clamped budget)",
    )
    serve_parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable the metrics registry and serve GET /metrics in "
        "Prometheus text exposition format (request latency histograms, "
        "queue depth, cache and job counters)",
    )
    serve_parser.add_argument(
        "--access-log",
        help="append one JSONL line per HTTP request (ts, remote, method, "
        "path, status, seconds) to this file",
    )
    serve_parser.add_argument(
        "--access-log-max-bytes",
        type=int,
        default=16 * 1024 * 1024,
        help="rotate the access log once it reaches this size: the file "
        "moves to <name>.1 (replacing any previous rollover) and a fresh "
        "log starts (default 16 MiB)",
    )
    serve_parser.add_argument(
        "--conformance",
        action="store_true",
        help="stamp paper-bound conformance blocks into result summaries "
        "and export bound_utilization gauges / the bound-violation "
        "counter at /metrics",
    )
    serve_parser.add_argument(
        "--trace",
        help="record job-lifecycle and request spans; the Chrome-trace "
        "JSONL is written here when the daemon stops",
    )
    serve_parser.add_argument(
        "--checkpoint-every-rounds",
        type=int,
        default=None,
        metavar="N",
        help="write a resumable checkpoint every N chase rounds so a "
        "SIGTERM drain (or crash) leaves running jobs resumable on disk",
    )
    serve_parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for round checkpoints (default: a fresh temp dir "
        "when --checkpoint-every-rounds is set)",
    )
    _fault_flag(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect and repair JSONL result-cache spill files",
    )
    cache_subparsers = cache_parser.add_subparsers(dest="action", required=True)
    cache_verify = cache_subparsers.add_parser(
        "verify",
        help="audit a spill file's per-line CRC32 integrity; --repair "
        "rewrites it keeping only healthy lines (checksums re-stamped)",
    )
    cache_verify.add_argument("cache_file", help="JSONL spill file to audit")
    cache_verify.add_argument(
        "--repair",
        action="store_true",
        help="rewrite the file in place, dropping torn/corrupt/checksum-"
        "failed lines and stamping checksums on legacy lines",
    )
    cache_verify.set_defaults(handler=_cmd_cache_verify)

    trace_parser = subparsers.add_parser(
        "trace",
        help="inspect Chrome-trace JSONL files written by --trace options",
    )
    trace_subparsers = trace_parser.add_subparsers(dest="action", required=True)
    trace_inspect = trace_subparsers.add_parser(
        "inspect", help="validate a trace file and print a per-span summary"
    )
    trace_inspect.add_argument("trace_file", help="Chrome-trace JSONL file")
    trace_inspect.add_argument(
        "--top",
        type=int,
        default=0,
        help="also rank the N most expensive span names by total time",
    )
    trace_inspect.add_argument(
        "--top-rules",
        action="store_true",
        help="print the per-rule attribution table embedded by "
        "'chase --trace FILE --profile' instead of the span summary",
    )
    trace_inspect.set_defaults(handler=_cmd_trace)

    profile_parser = subparsers.add_parser(
        "profile",
        help="print the top-K per-rule attribution table from a profiled "
        "run's JSON output (chase --profile --format json, or batch JSONL)",
    )
    profile_parser.add_argument(
        "file", help="JSON document or JSONL results file carrying 'profile' blocks"
    )
    profile_parser.add_argument(
        "--top", type=int, default=10, help="rows per table (default 10)"
    )
    profile_parser.set_defaults(handler=_cmd_profile)

    bench_history_root = subparsers.add_parser(
        "bench",
        help="inspect and compare the benchmarks/history.jsonl perf log",
    )
    bench_history_subparsers = bench_history_root.add_subparsers(
        dest="action", required=True
    )
    bench_history_cmd = bench_history_subparsers.add_parser(
        "history", help="list recorded bench runs (newest last)"
    )
    bench_history_cmd.add_argument(
        "--path", default="benchmarks/history.jsonl", help="history JSONL file"
    )
    bench_history_cmd.add_argument(
        "--limit", type=int, default=20, help="show at most N entries"
    )
    bench_history_cmd.add_argument(
        "--experiment", help="only entries of this experiment (e.g. engine-speed)"
    )
    bench_history_cmd.set_defaults(handler=_cmd_bench_history)
    bench_compare_cmd = bench_history_subparsers.add_parser(
        "compare",
        help="compare each experiment's latest entry against a baseline and "
        "flag per-row regressions beyond the noise threshold",
    )
    bench_compare_cmd.add_argument(
        "--path", default="benchmarks/history.jsonl", help="history JSONL file"
    )
    bench_compare_cmd.add_argument(
        "--baseline",
        help="git SHA (prefix) of the baseline entry; default: the "
        "previous entry of the same experiment",
    )
    bench_compare_cmd.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative slowdown tolerated before a row counts as a "
        "regression (default 0.15 = 15%%)",
    )
    bench_compare_cmd.add_argument(
        "--experiment", help="only compare this experiment (e.g. engine-speed)"
    )
    bench_compare_cmd.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any row regresses (CI gate; default is "
        "report-only)",
    )
    bench_compare_cmd.set_defaults(handler=_cmd_bench_compare)

    bench_parser = subparsers.add_parser(
        "bench-engine",
        help="measure fact-store engine vs compiled plans vs legacy rescan, "
        "write BENCH_engine.json",
    )
    bench_parser.add_argument("--output", default="BENCH_engine.json")
    bench_parser.add_argument("--repeats", type=int, default=3)
    bench_parser.add_argument(
        "--layout",
        choices=["both", "arrays", "sets"],
        default="both",
        help="store layouts to measure: 'both' adds the sets-vs-arrays "
        "comparison columns (and their gates) to every store-engine row",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="two-row CI perf smoke; exits non-zero if the store engine is "
        "not ≥1.5x over the legacy rescan, the arrays layout regresses "
        "below 1.0x of the sets layout, or results diverge",
    )
    _fault_flag(bench_parser)
    _add_history_flags(bench_parser)
    bench_parser.set_defaults(handler=_cmd_bench_engine)

    bench_runtime_parser = subparsers.add_parser(
        "bench-runtime",
        help="measure the batch runtime (pool vs serial, cache replay), write BENCH_runtime.json",
    )
    bench_runtime_parser.add_argument("--output", default="BENCH_runtime.json")
    bench_runtime_parser.add_argument("--jobs", type=int, default=200)
    bench_runtime_parser.add_argument("--workers", type=int, default=4)
    bench_runtime_parser.add_argument("--repeats", type=int, default=1)
    bench_runtime_parser.add_argument("--seed", type=int, default=7)
    _fault_flag(bench_runtime_parser)
    _add_history_flags(bench_runtime_parser)
    bench_runtime_parser.set_defaults(handler=_cmd_bench_runtime)

    bench_service_parser = subparsers.add_parser(
        "bench-service",
        help="measure the service daemon (throughput, latency, cache speedup), "
        "write BENCH_service.json",
    )
    bench_service_parser.add_argument("--output", default="BENCH_service.json")
    bench_service_parser.add_argument("--jobs", type=int, default=200)
    bench_service_parser.add_argument("--clients", type=int, default=4)
    bench_service_parser.add_argument("--workers", type=int, default=2)
    bench_service_parser.add_argument("--seed", type=int, default=7)
    _fault_flag(bench_service_parser)
    _add_history_flags(bench_service_parser)
    bench_service_parser.set_defaults(handler=_cmd_bench_service)
    return parser


def _add_history_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--history",
        default="benchmarks/history.jsonl",
        help="append this run's per-row metrics to the schema-versioned "
        "perf log (compare runs with 'bench compare')",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not record this run in the bench history",
    )


def _history_path(args: argparse.Namespace) -> Optional[str]:
    return None if args.no_history else args.history


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "inject_faults", None):
        # Arm before the handler touches any fault point (handlers that
        # need the injector reference re-arm idempotently).
        _arm_faults(args)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
