"""Command-line interface.

Three subcommands mirror the library's main entry points::

    python -m repro classify  ontology.rules
    python -m repro decide    ontology.rules database.facts [--method auto|syntactic|naive|ucq]
    python -m repro chase     ontology.rules database.facts [--variant semi-oblivious|restricted|oblivious]
                                                            [--max-atoms N] [--output FILE]
                                                            [--legacy-engine]

A fourth maintenance subcommand regenerates the engine speed report::

    python -m repro bench-engine [--output BENCH_engine.json] [--repeats N]

Rule files contain one TGD per line (``R(x, y) -> exists z . S(y, z)``),
database files one fact per line (``R(a, b).``); ``%`` and ``#`` start
comments.  ``decide`` exits with status 0 when the chase terminates,
1 when it does not, and 2 when the method could not decide.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.chase.engine import ChaseBudget
from repro.chase.oblivious import oblivious_chase
from repro.chase.restricted import restricted_chase
from repro.chase.semi_oblivious import semi_oblivious_chase
from repro.core.bounds import depth_bound, magnitude, size_bound_factor
from repro.core.classify import TGDClass, classify
from repro.core.decision import decide_termination
from repro.model.parser import parse_database, parse_program
from repro.model.serialization import instance_to_text

_VARIANTS = {
    "semi-oblivious": semi_oblivious_chase,
    "restricted": restricted_chase,
    "oblivious": oblivious_chase,
}


def _load_program(path: str):
    return parse_program(Path(path).read_text(), name=Path(path).stem)


def _load_database(path: str):
    return parse_database(Path(path).read_text())


def _cmd_classify(args: argparse.Namespace) -> int:
    program = _load_program(args.rules)
    tgd_class = classify(program)
    print(f"class: {tgd_class.value}")
    print(f"rules: {len(program)}")
    print(f"schema: {len(program.schema())} predicates, max arity {program.arity()}")
    if tgd_class is not TGDClass.ARBITRARY:
        print(f"depth bound d_C(Sigma): {magnitude(depth_bound(program))}")
        print(f"size bound factor f_C(Sigma): {magnitude(size_bound_factor(program))}")
    return 0


def _cmd_decide(args: argparse.Namespace) -> int:
    program = _load_program(args.rules)
    database = _load_database(args.database)
    verdict = decide_termination(database, program, method=args.method)
    answer = {True: "terminates", False: "does not terminate", None: "unknown"}[verdict.terminates]
    print(f"chase of {args.database} w.r.t. {args.rules}: {answer}")
    print(f"method: {verdict.method.value} (class {verdict.tgd_class.value})")
    if verdict.terminates:
        print(f"size bound: {magnitude(len(database) * size_bound_factor(program))}")
        return 0
    return 1 if verdict.terminates is False else 2


def _cmd_chase(args: argparse.Namespace) -> int:
    program = _load_program(args.rules)
    database = _load_database(args.database)
    runner = _VARIANTS[args.variant]
    budget = ChaseBudget(max_atoms=args.max_atoms)
    result = runner(
        database,
        program,
        budget=budget,
        record_derivation=False,
        compiled=not args.legacy_engine,
    )
    status = "terminated" if result.terminated else f"stopped ({result.outcome.value})"
    print(
        f"{status}: {result.size} atoms, max depth {result.max_depth}, "
        f"{result.statistics.triggers_applied} trigger applications, "
        f"{result.statistics.wall_seconds:.3f}s",
        file=sys.stderr,
    )
    text = instance_to_text(result.instance)
    if args.output:
        Path(args.output).write_text(text + "\n")
    else:
        print(text)
    return 0 if result.terminated else 1


def _cmd_bench_engine(args: argparse.Namespace) -> int:
    from repro.bench.drivers import engine_benchmark_rows, format_table, write_engine_report

    rows = engine_benchmark_rows(repeats=args.repeats)
    report = write_engine_report(path=args.output, rows=rows)
    print(format_table(rows))
    summary = report["summary"]
    print(
        f"\nmin semi-oblivious speedup: {summary['min_semi_oblivious_speedup']}x, "
        f"all runs equivalent: {summary['all_equivalent']}",
        file=sys.stderr,
    )
    print(f"wrote {args.output}", file=sys.stderr)
    return 0 if summary["all_equivalent"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Non-uniformly terminating semi-oblivious chase toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    classify_parser = subparsers.add_parser("classify", help="classify an ontology (SL/L/G/TGD)")
    classify_parser.add_argument("rules", help="file with one TGD per line")
    classify_parser.set_defaults(handler=_cmd_classify)

    decide_parser = subparsers.add_parser("decide", help="decide non-uniform chase termination")
    decide_parser.add_argument("rules")
    decide_parser.add_argument("database")
    decide_parser.add_argument(
        "--method", choices=["auto", "syntactic", "naive", "ucq"], default="auto"
    )
    decide_parser.set_defaults(handler=_cmd_decide)

    chase_parser = subparsers.add_parser("chase", help="materialise the chase")
    chase_parser.add_argument("rules")
    chase_parser.add_argument("database")
    chase_parser.add_argument("--variant", choices=sorted(_VARIANTS), default="semi-oblivious")
    chase_parser.add_argument("--max-atoms", type=int, default=1_000_000)
    chase_parser.add_argument("--output", help="write the materialised instance to a file")
    chase_parser.add_argument(
        "--legacy-engine",
        action="store_true",
        help="use the pre-refactor rescan engine instead of compiled rule plans",
    )
    chase_parser.set_defaults(handler=_cmd_chase)

    bench_parser = subparsers.add_parser(
        "bench-engine",
        help="measure compiled-plan pipeline vs legacy engine, write BENCH_engine.json",
    )
    bench_parser.add_argument("--output", default="BENCH_engine.json")
    bench_parser.add_argument("--repeats", type=int, default=3)
    bench_parser.set_defaults(handler=_cmd_bench_engine)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
