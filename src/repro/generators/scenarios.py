"""Realistic workloads: OBDA materialisation and data exchange.

The paper motivates the non-uniform termination problem with
ontology-based data access (guarded ontologies over relational data)
and data exchange (weakly-acyclic schema mappings).  These two
scenarios provide small but structurally realistic instances of both,
and are shared by the examples, the integration tests and the
chase-variant benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD, TGDSet


@dataclass(frozen=True)
class Scenario:
    """A named workload: a database, an ontology, and a short description."""

    name: str
    description: str
    database: Database
    tgds: TGDSet


def university_ontology_scenario(
    students: int = 30,
    courses: int = 8,
    professors: int = 5,
    seed: int = 7,
) -> Scenario:
    """A guarded university ontology in the spirit of LUBM/DL-Lite examples.

    The ontology is guarded (every rule has a guard atom) and its chase
    terminates for every database, so the scenario exercises the
    positive side of the decision procedures and the materialisation
    use case of the introduction.
    """
    rng = random.Random(seed)
    enrolled = Predicate("EnrolledIn", 2)
    teaches = Predicate("Teaches", 2)
    student = Predicate("Student", 1)
    course = Predicate("Course", 1)
    professor = Predicate("Professor", 1)
    advised_by = Predicate("AdvisedBy", 2)
    attends_taught_by = Predicate("AttendsClassOf", 2)
    person = Predicate("Person", 1)
    has_tutor = Predicate("HasTutor", 2)

    x, y, z = Variable("x"), Variable("y"), Variable("z")
    rules = [
        TGD((Atom(enrolled, (x, y)),), (Atom(student, (x,)), Atom(course, (y,))), rule_id="uo_enrolled"),
        TGD((Atom(teaches, (x, y)),), (Atom(professor, (x,)), Atom(course, (y,))), rule_id="uo_teaches"),
        TGD((Atom(student, (x,)),), (Atom(person, (x,)),), rule_id="uo_student_person"),
        TGD((Atom(professor, (x,)),), (Atom(person, (x,)),), rule_id="uo_prof_person"),
        TGD(
            (Atom(enrolled, (x, y)), Atom(teaches, (z, y))),
            (Atom(attends_taught_by, (x, z)),),
            rule_id="uo_attends",
        ),
        TGD(
            (Atom(student, (x,)),),
            (Atom(has_tutor, (x, z)), Atom(professor, (z,))),
            rule_id="uo_tutor",
        ),
        TGD((Atom(has_tutor, (x, y)),), (Atom(advised_by, (x, y)),), rule_id="uo_advised"),
        TGD((Atom(advised_by, (x, y)),), (Atom(person, (x,)), Atom(person, (y,))), rule_id="uo_advised_person"),
    ]
    # The join rule uo_attends has body {EnrolledIn(x, y), Teaches(z, y)}
    # which is not guarded; replace it with a guarded approximation that
    # keeps the scenario inside G: professors of a course advise its
    # students through the course membership atom only.
    rules[4] = TGD(
        (Atom(enrolled, (x, y)),),
        (Atom(attends_taught_by, (x, y)),),
        rule_id="uo_attends",
    )
    tgds = TGDSet(rules, name="university_ontology")

    database = Database()
    student_names = [Constant(f"student{i}") for i in range(1, students + 1)]
    course_names = [Constant(f"course{i}") for i in range(1, courses + 1)]
    professor_names = [Constant(f"prof{i}") for i in range(1, professors + 1)]
    for s in student_names:
        for _ in range(rng.randint(1, 3)):
            database.add(Atom(enrolled, (s, rng.choice(course_names))))
    for c in course_names:
        database.add(Atom(teaches, (rng.choice(professor_names), c)))
    return Scenario(
        name="university",
        description="guarded OBDA ontology with terminating chase",
        database=database,
        tgds=tgds,
    )


def data_exchange_scenario(
    employees: int = 40,
    departments: int = 6,
    seed: int = 11,
    weakly_acyclic: bool = True,
) -> Scenario:
    """A source-to-target data exchange mapping.

    With ``weakly_acyclic=True`` the mapping is the classical
    employee/department exercise whose chase always terminates.  With
    ``weakly_acyclic=False`` a feedback rule is added that creates a
    supported special cycle, so termination becomes database-dependent —
    exactly the non-uniform situation the paper studies.
    """
    rng = random.Random(seed)
    src_emp = Predicate("SrcEmployee", 2)       # (employee, department name)
    src_mgr = Predicate("SrcManager", 2)        # (manager, department name)
    emp = Predicate("Employee", 2)              # (employee, department id)
    dept = Predicate("Department", 2)           # (department id, manager)
    manager = Predicate("Manager", 1)
    works_with = Predicate("WorksWith", 2)

    x, y, z, d = Variable("x"), Variable("y"), Variable("z"), Variable("d")
    rules = [
        TGD(
            (Atom(src_emp, (x, y)),),
            (Atom(emp, (x, d)),),
            rule_id="de_emp",
        ),
        TGD(
            (Atom(src_mgr, (x, y)),),
            (Atom(dept, (d, x)), Atom(manager, (x,))),
            rule_id="de_mgr",
        ),
        TGD(
            (Atom(emp, (x, y)),),
            (Atom(works_with, (x, z)),),
            rule_id="de_colleague",
        ),
        TGD(
            (Atom(works_with, (x, y)),),
            (Atom(works_with, (y, x)),),
            rule_id="de_symmetric",
        ),
    ]
    if not weakly_acyclic:
        rules.append(
            TGD(
                (Atom(works_with, (x, y)),),
                (Atom(emp, (y, z)),),
                rule_id="de_feedback",
            )
        )
    tgds = TGDSet(rules, name="data_exchange")

    database = Database()
    department_names = [Constant(f"dept{i}") for i in range(1, departments + 1)]
    for i in range(1, employees + 1):
        database.add(
            Atom(src_emp, (Constant(f"emp{i}"), rng.choice(department_names)))
        )
    for name in department_names:
        database.add(Atom(src_mgr, (Constant(f"mgr_{name.name}"), name)))
    return Scenario(
        name="data_exchange",
        description="source-to-target exchange mapping (optionally cyclic)",
        database=database,
        tgds=tgds,
    )
