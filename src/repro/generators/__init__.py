"""Workload generators.

* :mod:`repro.generators.families` — the concrete constructions used in
  the paper's propositions and lower-bound theorems;
* :mod:`repro.generators.turing` — the Appendix A reduction from the
  halting problem (fixed Σ★, machine-dependent database);
* :mod:`repro.generators.random_programs` — seeded random SL/L/G
  programs and databases for property-based testing and scaling
  benchmarks;
* :mod:`repro.generators.scenarios` — realistic OBDA and data-exchange
  scenarios used by the examples.
"""

from repro.generators.families import (
    example_7_1,
    fairness_example,
    guarded_lower_bound,
    intro_nonterminating_example,
    linear_lower_bound,
    prop45_family,
    sl_lower_bound,
)
from repro.generators.turing import (
    TuringMachine,
    halting_machine,
    looping_machine,
    machine_database,
    sigma_star,
)
from repro.generators.random_programs import (
    random_database,
    random_guarded_program,
    random_linear_program,
    random_simple_linear_program,
)
from repro.generators.scenarios import (
    data_exchange_scenario,
    university_ontology_scenario,
)

__all__ = [
    "sl_lower_bound",
    "linear_lower_bound",
    "guarded_lower_bound",
    "prop45_family",
    "example_7_1",
    "intro_nonterminating_example",
    "fairness_example",
    "TuringMachine",
    "sigma_star",
    "machine_database",
    "halting_machine",
    "looping_machine",
    "random_simple_linear_program",
    "random_linear_program",
    "random_guarded_program",
    "random_database",
    "university_ontology_scenario",
    "data_exchange_scenario",
]
