"""Mixed batch workloads for the runtime executor and its benchmark.

:func:`mixed_workload_jobs` produces a manifest-sized list of
:class:`~repro.runtime.jobs.ChaseJob` drawn from the paper's families
(SL / L / G lower bounds, Proposition 4.5), the realistic OBDA and
data-exchange scenarios, the non-terminating intro example, and seeded
random programs — the mixture a multi-tenant chase service would see.

Classified families run under ``budget_mode="auto"`` so the paper's
``d_C``/``f_C`` bounds drive their budgets; random guarded and
arbitrary sets (where the bounds are astronomically large or absent)
carry explicit budgets, exercising the policy's fallback path.  Jobs
are tagged with their family and, where known, ``terminating`` /
``nonterminating``, which the benchmark uses to check that
auto-budgeted SL/L jobs never trip the atom budget on terminating
inputs.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.chase.engine import ChaseBudget
from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD, TGDSet
from repro.generators.families import (
    guarded_lower_bound,
    intro_nonterminating_example,
    linear_lower_bound,
    prop45_family,
    sl_lower_bound,
)
from repro.generators.random_programs import (
    random_database,
    random_guarded_program,
    random_linear_program,
    random_simple_linear_program,
)
from repro.generators.scenarios import data_exchange_scenario, university_ontology_scenario
from repro.runtime.jobs import ChaseJob

#: Explicit fallback budget for random guarded programs, whose paper
#: bounds are far over any practical cap.
_RANDOM_GUARDED_BUDGET = ChaseBudget(max_atoms=4_000, max_rounds=10_000)


def restricted_heavy(chain_length: int, payloads: int) -> Tuple[Database, TGDSet]:
    """A workload dominated by restricted-chase head-satisfaction checks.

    ``payloads`` tagged tokens are propagated down a ``chain_length``
    constant chain by an existential rule, and two echo rules keep
    re-deriving triggers whose heads are *already* satisfied — so a
    restricted-chase engine spends its time answering "does some
    ``P(y, _, u)`` exist?", the check this family is built to stress:

    * ``E(x,y), P(x,v,u) → ∃w P(y,w,u)`` — fires once per (position,
      payload) frontier key, ``chain_length · payloads`` head joins;
    * ``P(y,w,u) → Q(y,u)`` — full rule, containment only;
    * ``E(x,y), Q(y,u) → ∃w P(y,w,u)`` and
      ``E(x,y), P(x,v,u), Q(x,u) → ∃w P(y,w,u)`` — by the time their
      bodies match, the head is always satisfied: pure check load.

    Every trigger's activeness is decided by facts created in *earlier*
    rounds, never by another trigger of the same round with a different
    frontier key, so the fired-key set — and with it the result modulo
    fire numbering — does not depend on within-round application order.
    The chase terminates for all three variants.
    """
    if chain_length < 2 or payloads < 1:
        raise ValueError("chain_length must be > 1 and payloads positive")
    edge = Predicate("E", 2)
    payload = Predicate("P", 3)
    echo = Predicate("Q", 2)
    chain = [Constant(f"a{i}") for i in range(1, chain_length + 1)]
    tags = [Constant(f"t{j}") for j in range(1, payloads + 1)]
    facts = [Atom(edge, (chain[i], chain[i + 1])) for i in range(chain_length - 1)]
    facts.extend(Atom(payload, (chain[0], tag, tag)) for tag in tags)
    database = Database(facts)

    x, y, u, v, w = (Variable(name) for name in "xyuvw")
    tgds = TGDSet(
        [
            TGD(
                body=(Atom(edge, (x, y)), Atom(payload, (x, v, u))),
                head=(Atom(payload, (y, w, u)),),
                rule_id="rh_propagate",
            ),
            TGD(
                body=(Atom(payload, (y, w, u)),),
                head=(Atom(echo, (y, u)),),
                rule_id="rh_echo",
            ),
            TGD(
                body=(Atom(edge, (x, y)), Atom(echo, (y, u))),
                head=(Atom(payload, (y, w, u)),),
                rule_id="rh_recheck",
            ),
            TGD(
                body=(Atom(edge, (x, y)), Atom(payload, (x, v, u)), Atom(echo, (x, u))),
                head=(Atom(payload, (y, w, u)),),
                rule_id="rh_recheck_join",
            ),
        ],
        name=f"restricted_heavy(n={chain_length},m={payloads})",
    )
    return database, tgds


def _family_makers(rng: random.Random) -> List[Callable[[int], ChaseJob]]:
    """One constructor per workload family; ``index`` varies parameters."""

    def sl_family(index: int) -> ChaseJob:
        ell = 1 + index % 3
        database, tgds = sl_lower_bound(2, 2, ell)
        return ChaseJob(
            program=tgds, database=database, job_id=f"sl-family-{index}",
            tags=("family:sl", "terminating"),
        )

    def linear_family(index: int) -> ChaseJob:
        ell = 1 + index % 3
        database, tgds = linear_lower_bound(2, 2, ell)
        return ChaseJob(
            program=tgds, database=database, job_id=f"linear-family-{index}",
            tags=("family:linear", "terminating"),
        )

    def guarded_family(index: int) -> ChaseJob:
        database, tgds = guarded_lower_bound(1, 1, 1)
        return ChaseJob(
            program=tgds, database=database, job_id=f"guarded-family-{index}",
            tags=("family:guarded", "terminating"),
        )

    def prop45(index: int) -> ChaseJob:
        database, tgds = prop45_family(3 + index % 5)
        return ChaseJob(
            program=tgds, database=database, job_id=f"prop45-{index}",
            tags=("family:prop45", "terminating"),
        )

    def intro(index: int) -> ChaseJob:
        database, tgds = intro_nonterminating_example()
        return ChaseJob(
            program=tgds, database=database, job_id=f"intro-{index}",
            tags=("family:intro", "nonterminating"),
        )

    def university(index: int) -> ChaseJob:
        scenario = university_ontology_scenario(
            students=5 + index % 10, courses=3 + index % 3, professors=2, seed=index
        )
        return ChaseJob(
            program=scenario.tgds, database=scenario.database,
            job_id=f"university-{index}", tags=("family:university", "terminating"),
        )

    def data_exchange(index: int) -> ChaseJob:
        cyclic = index % 2 == 1
        scenario = data_exchange_scenario(
            employees=4 + index % 6, departments=2, seed=index, weakly_acyclic=not cyclic
        )
        return ChaseJob(
            program=scenario.tgds, database=scenario.database,
            job_id=f"data-exchange-{index}",
            tags=("family:data-exchange", "nonterminating" if cyclic else "terminating"),
        )

    def random_sl(index: int) -> ChaseJob:
        seed = rng.randint(0, 10_000)
        program = random_simple_linear_program(seed)
        return ChaseJob(
            program=program, database=random_database(program, seed + 1, fact_count=6),
            job_id=f"random-sl-{index}", tags=("family:random-sl",), timeout_seconds=2.0,
        )

    def random_l(index: int) -> ChaseJob:
        seed = rng.randint(0, 10_000)
        program = random_linear_program(seed)
        return ChaseJob(
            program=program, database=random_database(program, seed + 1, fact_count=6),
            job_id=f"random-linear-{index}", tags=("family:random-linear",),
            timeout_seconds=2.0,
        )

    def random_g(index: int) -> ChaseJob:
        seed = rng.randint(0, 10_000)
        program = random_guarded_program(seed)
        return ChaseJob(
            program=program, database=random_database(program, seed + 1, fact_count=6),
            job_id=f"random-guarded-{index}", tags=("family:random-guarded",),
            budget_mode="explicit", budget=_RANDOM_GUARDED_BUDGET, timeout_seconds=2.0,
        )

    return [
        sl_family, linear_family, guarded_family, prop45, intro,
        university, data_exchange, random_sl, random_l, random_g,
    ]


def mixed_workload_jobs(job_count: int = 200, seed: int = 7) -> List[ChaseJob]:
    """A deterministic mixed manifest of ``job_count`` jobs.

    Families are interleaved round-robin so any prefix is still mixed;
    the random-program seeds derive from ``seed``.
    """
    rng = random.Random(seed)
    makers = _family_makers(rng)
    jobs: List[ChaseJob] = []
    for index in range(job_count):
        maker = makers[index % len(makers)]
        jobs.append(maker(index // len(makers)))
    return jobs
