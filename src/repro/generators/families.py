"""The paper's concrete constructions.

Every function returns a ``(database, tgds)`` pair (or a family of
them) exactly as defined in the paper:

* :func:`intro_nonterminating_example` — the Section 3 example of a
  non-terminating chase (``R(x, y) → ∃z R(y, z)``);
* :func:`fairness_example` — the Section 3 example showing why unfair
  derivations are not valid;
* :func:`prop45_family` — Proposition 4.5: ``maxdepth`` grows with the
  database even though the chase is finite;
* :func:`example_7_1` — Example 7.1: a linear set that is not
  ``D``-weakly-acyclic although its chase is finite;
* :func:`sl_lower_bound` — Theorem 6.5 (simple linear lower bound);
* :func:`linear_lower_bound` — Theorem 7.6 (linear lower bound);
* :func:`guarded_lower_bound` — Theorem 8.4 (guarded lower bound).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD, TGDSet


def _constants(prefix: str, count: int) -> List[Constant]:
    return [Constant(f"{prefix}{i}") for i in range(1, count + 1)]


def _variables(prefix: str, count: int) -> List[Variable]:
    return [Variable(f"{prefix}{i}") for i in range(1, count + 1)]


# --------------------------------------------------------------------------
# Small illustrative examples (Sections 3 and 7)
# --------------------------------------------------------------------------


def intro_nonterminating_example() -> Tuple[Database, TGDSet]:
    """``D = {R(a, b)}``, ``Σ = {R(x, y) → ∃z R(y, z)}``: infinite chase."""
    relation = Predicate("R", 2)
    a, b = Constant("a"), Constant("b")
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    database = Database([Atom(relation, (a, b))])
    tgds = TGDSet(
        [TGD(body=(Atom(relation, (x, y)),), head=(Atom(relation, (y, z)),), rule_id="intro")],
        name="intro",
    )
    return database, tgds


def fairness_example() -> Tuple[Database, TGDSet]:
    """The Section 3 example with σ and σ′ used to motivate fairness."""
    relation = Predicate("R", 2)
    partner = Predicate("P", 2)
    a, b = Constant("a"), Constant("b")
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    database = Database([Atom(relation, (a, b))])
    sigma = TGD(
        body=(Atom(relation, (x, y)),),
        head=(Atom(relation, (y, z)),),
        rule_id="fair_sigma",
    )
    sigma_prime = TGD(
        body=(Atom(relation, (x, y)),),
        head=(Atom(partner, (x, y)),),
        rule_id="fair_sigma_prime",
    )
    return database, TGDSet([sigma, sigma_prime], name="fairness")


def example_7_1() -> Tuple[Database, TGDSet]:
    """Example 7.1: finite chase but not ``D``-weakly-acyclic."""
    relation = Predicate("R", 2)
    a, b = Constant("a"), Constant("b")
    x, z = Variable("x"), Variable("z")
    database = Database([Atom(relation, (a, b))])
    tgds = TGDSet(
        [
            TGD(
                body=(Atom(relation, (x, x)),),
                head=(Atom(relation, (z, x)),),
                rule_id="ex71",
            )
        ],
        name="example_7_1",
    )
    return database, tgds


def prop45_family(n: int) -> Tuple[Database, TGDSet]:
    """Proposition 4.5: ``maxdepth(D_n, Σ) = n − 1`` with ``|D_n| = n``.

    ``D_n = {P(a1, b, b), R(a1, a2), ..., R(a_{n−1}, a_n)}`` and
    ``Σ = {R(x, y), P(x, z, v) → ∃w P(y, w, z)}``.
    """
    if n < 2:
        raise ValueError("the family is defined for n > 1")
    p = Predicate("P", 3)
    r = Predicate("R", 2)
    a = _constants("a", n)
    b = Constant("b")
    facts = [Atom(p, (a[0], b, b))]
    facts.extend(Atom(r, (a[i], a[i + 1])) for i in range(n - 1))
    database = Database(facts)
    x, y, z, v, w = (Variable(name) for name in "xyzvw")
    tgds = TGDSet(
        [
            TGD(
                body=(Atom(r, (x, y)), Atom(p, (x, z, v))),
                head=(Atom(p, (y, w, z)),),
                rule_id="prop45",
            )
        ],
        name="prop45",
    )
    return database, tgds


# --------------------------------------------------------------------------
# Theorem 6.5: simple linear lower bound
# --------------------------------------------------------------------------


def sl_lower_bound(n: int, m: int, database_size: int = 1) -> Tuple[Database, TGDSet]:
    """The family of Theorem 6.5: ``|chase(D_ℓ, Σ_{n,m})| ≥ ℓ · m^(n·m)``.

    ``n`` is the number of counting predicates (``|sch(Σ)| − 1``), ``m``
    the arity, and ``database_size`` the paper's ``ℓ``.
    """
    if n < 1 or m < 1 or database_size < 1:
        raise ValueError("n, m and database_size must be positive")
    start = Predicate("P0", 1)
    levels = [Predicate(f"R{i}", m) for i in range(1, n + 1)]
    database = Database(Atom(start, (c,)) for c in _constants("c", database_size))

    tgds: List[TGD] = []
    x = Variable("x")
    ys = _variables("y", m)
    # Σ_start: P0(x) → ∃ȳ P0(x), R1(ȳ)
    tgds.append(
        TGD(
            body=(Atom(start, (x,)),),
            head=(Atom(start, (x,)), Atom(levels[0], tuple(ys))),
            rule_id="sl_start",
        )
    )
    for i, level in enumerate(levels, start=1):
        xs = _variables(f"x{i}_", m)
        for j in range(1, m + 1):
            # Swap positions 1 and j.
            swapped = list(xs)
            swapped[0], swapped[j - 1] = swapped[j - 1], swapped[0]
            tgds.append(
                TGD(
                    body=(Atom(level, tuple(xs)),),
                    head=(Atom(level, tuple(swapped)),),
                    rule_id=f"sl_swap_{i}_{j}",
                )
            )
            # Copy position j into position 1.
            copied = list(xs)
            copied[0] = xs[j - 1]
            tgds.append(
                TGD(
                    body=(Atom(level, tuple(xs)),),
                    head=(Atom(level, tuple(copied)),),
                    rule_id=f"sl_copy_{i}_{j}",
                )
            )
        if i < n:
            zs = _variables(f"z{i}_", m)
            tgds.append(
                TGD(
                    body=(Atom(level, tuple(xs)),),
                    head=(Atom(level, tuple(xs)), Atom(levels[i], tuple(zs))),
                    rule_id=f"sl_next_{i}",
                )
            )
    return database, TGDSet(tgds, name=f"sl_lower_bound(n={n},m={m})")


# --------------------------------------------------------------------------
# Theorem 7.6: linear lower bound
# --------------------------------------------------------------------------


def linear_lower_bound(n: int, m: int, database_size: int = 1) -> Tuple[Database, TGDSet]:
    """The family of Theorem 7.6: ``|chase| ≥ ℓ · 2^(n·(2^m − 1))``.

    The counting predicates ``R_i`` have arity ``m + 3``; the TGDs use
    repeated variables in their bodies, so the set is linear but not
    simple linear.
    """
    if n < 1 or m < 1 or database_size < 1:
        raise ValueError("n, m and database_size must be positive")
    start = Predicate("P0", 1)
    levels = [Predicate(f"R{i}", m + 3) for i in range(1, n + 1)]
    database = Database(Atom(start, (c,)) for c in _constants("c", database_size))

    tgds: List[TGD] = []
    x, y, z, u, v, w = (Variable(name) for name in "xyzuvw")
    # Σ_start: P0(x) → ∃y∃z P0(x), R1(y, ..., y, y, z, y)
    tgds.append(
        TGD(
            body=(Atom(start, (x,)),),
            head=(Atom(start, (x,)), Atom(levels[0], tuple([y] * m + [y, z, y]))),
            rule_id="lin_start",
        )
    )
    for i, level in enumerate(levels, start=1):
        for j in range(m):
            xs = _variables(f"x{i}_{j}_", m - j - 1)
            body_args = tuple(xs + [y] + [z] * j + [y, z, u])
            head_keep = Atom(level, body_args)
            flipped = tuple(xs + [z] + [y] * j + [y, z, v])
            flipped_w = tuple(xs + [z] + [y] * j + [y, z, w])
            tgds.append(
                TGD(
                    body=(Atom(level, body_args),),
                    head=(head_keep, Atom(level, flipped), Atom(level, flipped_w)),
                    rule_id=f"lin_step_{i}_{j}",
                )
            )
        if i < n:
            body_args = tuple([x] * m + [y, x, z])
            tgds.append(
                TGD(
                    body=(Atom(level, body_args),),
                    head=(
                        Atom(level, body_args),
                        Atom(levels[i], tuple([v] * m + [v, w, v])),
                    ),
                    rule_id=f"lin_next_{i}",
                )
            )
    return database, TGDSet(tgds, name=f"linear_lower_bound(n={n},m={m})")


# --------------------------------------------------------------------------
# Theorem 8.4: guarded lower bound
# --------------------------------------------------------------------------


def guarded_lower_bound(n: int, m: int, database_size: int = 1) -> Tuple[Database, TGDSet]:
    """The family of Theorem 8.4: ``|chase| ≥ ℓ · 2^(2^n · (2^(2^m) − 1))``.

    The construction builds, per database constant, ``2^n`` strata of
    full binary trees of depth ``2^(2^m) − 1``; the strata counter is an
    ``n``-bit binary counter over the ``S_i`` predicates and the depth
    counter a ``2^m``-bit counter over ``Depth`` atoms addressed by
    ``m``-bit digit identifiers.  Only tiny parameters are feasible —
    which is the theorem's very point.
    """
    if n < 1 or m < 1 or database_size < 1:
        raise ValueError("n, m and database_size must be positive")
    node = Predicate("Node", 4)
    root = Predicate("Root", 1)
    new_root = Predicate("NewRoot", 1)
    non_root = Predicate("NonRoot", 1)
    non_max_stratum = Predicate("NonMaxStratum", 1)
    non_max_depth = Predicate("NonMaxDepth", 1)
    strata = [Predicate(f"S{i}", 2) for i in range(1, n + 1)]
    did = Predicate("Did", 4 + m)
    succ = Predicate("Succ", 4 + 2 * m)
    depth = Predicate("Depth", m + 2)
    d_pivot = Predicate("DPivot", m + 1)
    d_change = Predicate("DChange", m + 1)
    d_copy = Predicate("DCopy", m + 1)
    s_pivot = [Predicate(f"SPivot{i}", 1) for i in range(1, n + 1)]
    s_change = [Predicate(f"SChange{i}", 1) for i in range(1, n + 1)]
    s_copy = [Predicate(f"SCopy{i}", 1) for i in range(1, n + 1)]

    zero, one = Constant("0"), Constant("1")
    database = Database(
        Atom(node, (c, c, zero, one)) for c in _constants("c", database_size)
    )

    x, y, z, o, u = (Variable(name) for name in ("x", "y", "z", "o", "u"))
    v, w = Variable("v"), Variable("w")
    ws = _variables("w", m)
    ws_prime = _variables("wp", m)

    tgds: List[TGD] = []

    def add(body, head, rule_id):
        tgds.append(TGD(body=tuple(body), head=tuple(head), rule_id=rule_id))

    # Root of the 0-th stratum.
    add(
        [Atom(node, (x, x, z, o))],
        [Atom(root, (x,))] + [Atom(s, (x, z)) for s in strata],
        "g_root",
    )
    # Digit identifiers.
    add([Atom(node, (x, y, z, o))], [Atom(did, (x, y, z, o, *([z] * m)))], "g_did0")
    for i in range(1, m + 1):
        before = ws[: i - 1]
        after = ws[i:]
        add(
            [Atom(did, (x, y, z, o, *before, z, *after))],
            [Atom(did, (x, y, z, o, *before, o, *after))],
            f"g_did_{i}",
        )
    # Depth counter of root nodes is all-zero.
    add(
        [Atom(did, (x, y, z, o, *ws)), Atom(root, (y,))],
        [Atom(depth, (y, *ws, z))],
        "g_depth_root",
    )
    # Successor relation over digit identifiers.
    for i in range(1, m + 1):
        before = ws[: i - 1]
        add(
            [Atom(did, (x, y, z, o, *before, z, *([o] * (m - i))))],
            [
                Atom(
                    succ,
                    (x, y, z, o, *before, z, *([o] * (m - i)), *before, o, *([z] * (m - i))),
                )
            ],
            f"g_succ_{i}",
        )
    # Complements: not in the last stratum / not at maximal depth.
    for i, s in enumerate(strata, start=1):
        add(
            [Atom(node, (x, y, z, o)), Atom(s, (y, z))],
            [Atom(non_max_stratum, (y,))],
            f"g_nonmaxstratum_{i}",
        )
    # The paper writes this rule (and the two digit-classification base
    # rules below) with the constants 0/1 left implicit; we anchor them
    # through a Did atom, which keeps the rule guarded and gives the
    # intended meaning "some depth bit of y is 0".
    add(
        [Atom(did, (x, y, z, o, *ws)), Atom(depth, (y, *ws, z))],
        [Atom(non_max_depth, (y,))],
        "g_nonmaxdepth",
    )
    # Children of non-maximal-depth nodes.
    add(
        [Atom(node, (x, y, z, o)), Atom(non_max_depth, (y,))],
        [
            Atom(node, (y, w, z, o)),
            Atom(non_root, (w,)),
            Atom(node, (y, v, z, o)),
            Atom(non_root, (v,)),
        ],
        "g_children",
    )
    # Children inherit the stratum of their parent.
    for i, s in enumerate(strata, start=1):
        add(
            [Atom(node, (x, y, z, o)), Atom(non_root, (y,)), Atom(s, (x, z))],
            [Atom(s, (y, z))],
            f"g_stratum_copy0_{i}",
        )
        add(
            [Atom(node, (x, y, z, o)), Atom(non_root, (y,)), Atom(s, (x, o))],
            [Atom(s, (y, o))],
            f"g_stratum_copy1_{i}",
        )
    # Depth-counter digit classification (pivot / change / copy).
    add(
        [Atom(did, (x, y, z, o, *ws)), Atom(depth, (y, *([o] * m), z))],
        [Atom(d_pivot, (y, *([o] * m)))],
        "g_dpivot_base",
    )
    add(
        [Atom(did, (x, y, z, o, *ws)), Atom(depth, (y, *([o] * m), o))],
        [Atom(d_change, (y, *([o] * m)))],
        "g_dchange_base",
    )
    add(
        [
            Atom(succ, (x, y, z, o, *ws, *ws_prime)),
            Atom(d_change, (y, *ws_prime)),
            Atom(depth, (y, *ws, z)),
        ],
        [Atom(d_pivot, (y, *ws))],
        "g_dpivot_step",
    )
    add(
        [
            Atom(succ, (x, y, z, o, *ws, *ws_prime)),
            Atom(d_change, (y, *ws_prime)),
            Atom(depth, (y, *ws, o)),
        ],
        [Atom(d_change, (y, *ws))],
        "g_dchange_step",
    )
    add(
        [Atom(succ, (x, y, z, o, *ws, *ws_prime)), Atom(d_pivot, (y, *ws_prime))],
        [Atom(d_copy, (y, *ws))],
        "g_dcopy_pivot",
    )
    add(
        [Atom(succ, (x, y, z, o, *ws, *ws_prime)), Atom(d_copy, (y, *ws_prime))],
        [Atom(d_copy, (y, *ws))],
        "g_dcopy_step",
    )
    # The depth of a non-root node is its parent's depth plus one.
    add(
        [Atom(did, (x, y, z, o, *ws)), Atom(non_root, (y,)), Atom(d_change, (x, *ws))],
        [Atom(depth, (y, *ws, z))],
        "g_depth_change",
    )
    add(
        [Atom(did, (x, y, z, o, *ws)), Atom(non_root, (y,)), Atom(d_pivot, (x, *ws))],
        [Atom(depth, (y, *ws, o))],
        "g_depth_pivot",
    )
    add(
        [
            Atom(did, (x, y, z, o, *ws)),
            Atom(non_root, (y,)),
            Atom(d_copy, (x, *ws)),
            Atom(depth, (x, *ws, z)),
        ],
        [Atom(depth, (y, *ws, z))],
        "g_depth_copy0",
    )
    add(
        [
            Atom(did, (x, y, z, o, *ws)),
            Atom(non_root, (y,)),
            Atom(d_copy, (x, *ws)),
            Atom(depth, (x, *ws, o)),
        ],
        [Atom(depth, (y, *ws, o))],
        "g_depth_copy1",
    )
    # New stratum: maximal-depth leaves of non-maximal strata spawn new roots.
    add(
        [Atom(node, (x, y, z, o)), Atom(non_max_stratum, (y,))],
        [Atom(node, (y, w, z, o)), Atom(new_root, (w,))],
        "g_new_root",
    )
    add([Atom(new_root, (x,))], [Atom(root, (x,))], "g_new_root_is_root")
    # Stratum-counter digit classification.
    add(
        [Atom(node, (x, y, z, o)), Atom(strata[-1], (y, z))],
        [Atom(s_pivot[-1], (y,))],
        "g_spivot_base",
    )
    add(
        [Atom(node, (x, y, z, o)), Atom(strata[-1], (y, o))],
        [Atom(s_change[-1], (y,))],
        "g_schange_base",
    )
    for i in range(n, 1, -1):
        index = i - 1  # 0-based index of S_i
        add(
            [Atom(node, (x, y, z, o)), Atom(s_change[index], (y,)), Atom(strata[index - 1], (y, z))],
            [Atom(s_pivot[index - 1], (y,))],
            f"g_spivot_step_{i}",
        )
        add(
            [Atom(node, (x, y, z, o)), Atom(s_change[index], (y,)), Atom(strata[index - 1], (y, o))],
            [Atom(s_change[index - 1], (y,))],
            f"g_schange_step_{i}",
        )
        add(
            [Atom(node, (x, y, z, o)), Atom(s_pivot[index], (y,))],
            [Atom(s_copy[index - 1], (y,))],
            f"g_scopy_pivot_{i}",
        )
        add(
            [Atom(node, (x, y, z, o)), Atom(s_copy[index], (y,))],
            [Atom(s_copy[index - 1], (y,))],
            f"g_scopy_step_{i}",
        )
    # Stratum-counter increment for new roots (all digits).
    for i, s in enumerate(strata, start=1):
        index = i - 1
        add(
            [Atom(node, (x, y, z, o)), Atom(new_root, (y,)), Atom(s_change[index], (x,))],
            [Atom(s, (y, z))],
            f"g_sinc_change_{i}",
        )
        add(
            [Atom(node, (x, y, z, o)), Atom(new_root, (y,)), Atom(s_pivot[index], (x,))],
            [Atom(s, (y, o))],
            f"g_sinc_pivot_{i}",
        )
        add(
            [
                Atom(node, (x, y, z, o)),
                Atom(new_root, (y,)),
                Atom(s_copy[index], (x,)),
                Atom(s, (x, z)),
            ],
            [Atom(s, (y, z))],
            f"g_sinc_copy0_{i}",
        )
        add(
            [
                Atom(node, (x, y, z, o)),
                Atom(new_root, (y,)),
                Atom(s_copy[index], (x,)),
                Atom(s, (x, o)),
            ],
            [Atom(s, (y, o))],
            f"g_sinc_copy1_{i}",
        )
    return database, TGDSet(tgds, name=f"guarded_lower_bound(n={n},m={m})")
