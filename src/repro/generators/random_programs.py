"""Seeded random generators of TGD programs and databases.

These generators are used by the property-based tests (to exercise the
equivalence between the syntactic characterisations and the actual
chase behaviour on many small inputs) and by the scaling benchmarks.
All of them are deterministic functions of their ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD, TGDSet


def _schema(predicate_count: int, max_arity: int, rng: random.Random) -> List[Predicate]:
    return [
        Predicate(f"P{i}", rng.randint(1, max_arity)) for i in range(1, predicate_count + 1)
    ]


def random_simple_linear_program(
    seed: int,
    predicate_count: int = 4,
    max_arity: int = 3,
    rule_count: int = 5,
    existential_probability: float = 0.5,
) -> TGDSet:
    """A random simple linear program (distinct body variables)."""
    rng = random.Random(seed)
    schema = _schema(predicate_count, max_arity, rng)
    tgds: List[TGD] = []
    for index in range(rule_count):
        body_predicate = rng.choice(schema)
        body_variables = [Variable(f"x{index}_{i}") for i in range(body_predicate.arity)]
        body_atom = Atom(body_predicate, tuple(body_variables))
        head_predicate = rng.choice(schema)
        head_args = []
        existential_counter = 0
        for position in range(head_predicate.arity):
            if body_variables and rng.random() > existential_probability:
                head_args.append(rng.choice(body_variables))
            else:
                head_args.append(Variable(f"z{index}_{existential_counter}"))
                existential_counter += 1
        tgds.append(
            TGD(
                body=(body_atom,),
                head=(Atom(head_predicate, tuple(head_args)),),
                rule_id=f"rand_sl_{seed}_{index}",
            )
        )
    return TGDSet(tgds, name=f"random_sl(seed={seed})")


def random_linear_program(
    seed: int,
    predicate_count: int = 4,
    max_arity: int = 3,
    rule_count: int = 5,
    existential_probability: float = 0.5,
    repetition_probability: float = 0.4,
) -> TGDSet:
    """A random linear program; body atoms may repeat variables."""
    rng = random.Random(seed)
    base = random_simple_linear_program(
        seed, predicate_count, max_arity, rule_count, existential_probability
    )
    tgds: List[TGD] = []
    for index, tgd in enumerate(base):
        body_atom = tgd.body[0]
        args = list(body_atom.args)
        for position in range(1, len(args)):
            if rng.random() < repetition_probability:
                args[position] = args[rng.randint(0, position - 1)]
        mapping = {old: new for old, new in zip(body_atom.args, args) if old != new}
        new_body = Atom(body_atom.predicate, tuple(args))
        new_head = tuple(a.substitute(mapping) for a in tgd.head)
        tgds.append(
            TGD(body=(new_body,), head=new_head, rule_id=f"rand_l_{seed}_{index}")
        )
    return TGDSet(tgds, name=f"random_linear(seed={seed})")


def random_guarded_program(
    seed: int,
    predicate_count: int = 4,
    max_arity: int = 3,
    rule_count: int = 5,
    side_atom_probability: float = 0.6,
    existential_probability: float = 0.4,
) -> TGDSet:
    """A random guarded program: one guard atom plus side atoms over its variables."""
    rng = random.Random(seed)
    schema = _schema(predicate_count, max_arity, rng)
    tgds: List[TGD] = []
    for index in range(rule_count):
        guard_predicate = rng.choice(schema)
        guard_variables = [Variable(f"x{index}_{i}") for i in range(guard_predicate.arity)]
        body: List[Atom] = [Atom(guard_predicate, tuple(guard_variables))]
        if rng.random() < side_atom_probability and guard_variables:
            side_predicate = rng.choice(schema)
            side_args = tuple(rng.choice(guard_variables) for _ in range(side_predicate.arity))
            body.append(Atom(side_predicate, side_args))
        head_predicate = rng.choice(schema)
        head_args = []
        existential_counter = 0
        for position in range(head_predicate.arity):
            if guard_variables and rng.random() > existential_probability:
                head_args.append(rng.choice(guard_variables))
            else:
                head_args.append(Variable(f"z{index}_{existential_counter}"))
                existential_counter += 1
        tgds.append(
            TGD(
                body=tuple(body),
                head=(Atom(head_predicate, tuple(head_args)),),
                rule_id=f"rand_g_{seed}_{index}",
            )
        )
    return TGDSet(tgds, name=f"random_guarded(seed={seed})")


def random_database(
    tgds: TGDSet,
    seed: int,
    fact_count: int = 10,
    constant_count: int = 5,
    predicates: Optional[Sequence[Predicate]] = None,
) -> Database:
    """A random database over the schema of ``tgds`` (or over ``predicates``)."""
    rng = random.Random(seed)
    pool = list(predicates) if predicates is not None else sorted(
        tgds.schema(), key=lambda p: (p.name, p.arity)
    )
    constants = [Constant(f"c{i}") for i in range(1, constant_count + 1)]
    database = Database()
    for _ in range(fact_count):
        predicate = rng.choice(pool)
        args = tuple(rng.choice(constants) for _ in range(predicate.arity))
        database.add(Atom(predicate, args))
    return database
