"""The Appendix A reduction: a fixed TGD set Σ★ simulating Turing machines.

The paper strengthens the undecidability of ``ChTrm(TGD)`` to data
complexity by exhibiting a *fixed* set Σ★ of TGDs and, for every
deterministic Turing machine ``M``, a database ``D_M`` such that
``chase(D_M, Σ★)`` is finite iff ``M`` halts on the empty input.  The
database stores the transition table and the initial configuration; the
TGDs unroll the computation as a grid of ``Tape``/``Head`` atoms.

This module builds Σ★ and ``D_M`` verbatim, plus two tiny machines (one
halting, one looping) used by the tests and benchmarks to exercise both
outcomes, and by Proposition 4.2's demonstration that no uniform bound
on the chase size exists for arbitrary TGDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.atoms import Atom, Predicate
from repro.model.instance import Database
from repro.model.terms import Constant, Variable
from repro.model.tgd import TGD, TGDSet

LEFT, STAY, RIGHT = "<", "-", ">"

# Schema of the encoding.
TRANS = Predicate("Trans", 5)
TAPE = Predicate("Tape", 3)
HEAD = Predicate("Head", 3)
LDIR = Predicate("LDir", 1)
SDIR = Predicate("SDir", 1)
RDIR = Predicate("RDir", 1)
BLANK = Predicate("Blank", 1)
END = Predicate("End", 1)
NORM_SYMB = Predicate("NormSymb", 1)
L_EDGE = Predicate("L", 2)
R_EDGE = Predicate("R", 2)

BEGIN_MARKER = "|>"
END_MARKER = "<|"
BLANK_SYMBOL = "_"


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic Turing machine ``M = (S, Λ, f, s0)``.

    ``transitions`` maps ``(state, symbol)`` to
    ``(new state, new symbol, direction)`` with direction one of
    ``"<"``, ``"-"``, ``">"``.  Machines without a transition for the
    current ``(state, symbol)`` pair halt (the chase then reaches a
    fixpoint).  The tape alphabet implicitly contains the markers
    ``|>``, ``<|`` and the blank ``_``.
    """

    states: Tuple[str, ...]
    alphabet: Tuple[str, ...]
    transitions: Dict[Tuple[str, str], Tuple[str, str, str]]
    initial_state: str

    def __post_init__(self) -> None:
        if self.initial_state not in self.states:
            raise ValueError("the initial state must be one of the machine's states")
        for (state, symbol), (new_state, new_symbol, direction) in self.transitions.items():
            if state not in self.states or new_state not in self.states:
                raise ValueError(f"unknown state in transition {(state, symbol)}")
            if direction not in (LEFT, STAY, RIGHT):
                raise ValueError(f"invalid direction {direction!r}")


def machine_database(machine: TuringMachine) -> Database:
    """``D_M``: transition table, initial configuration and helper atoms."""
    database = Database()
    for (state, symbol), (new_state, new_symbol, direction) in machine.transitions.items():
        database.add(
            Atom(
                TRANS,
                (
                    Constant(state),
                    Constant(symbol),
                    Constant(new_state),
                    Constant(new_symbol),
                    Constant(direction),
                ),
            )
        )
    cells = [Constant(f"cell{i}") for i in range(4)]
    database.add(Atom(TAPE, (cells[0], Constant(BEGIN_MARKER), cells[1])))
    database.add(Atom(TAPE, (cells[1], Constant(BLANK_SYMBOL), cells[2])))
    database.add(Atom(HEAD, (cells[1], Constant(machine.initial_state), cells[2])))
    database.add(Atom(TAPE, (cells[2], Constant(END_MARKER), cells[3])))
    database.add(Atom(LDIR, (Constant(LEFT),)))
    database.add(Atom(SDIR, (Constant(STAY),)))
    database.add(Atom(RDIR, (Constant(RIGHT),)))
    database.add(Atom(BLANK, (Constant(BLANK_SYMBOL),)))
    database.add(Atom(END, (Constant(END_MARKER),)))
    for symbol in machine.alphabet:
        if symbol not in (BEGIN_MARKER, END_MARKER):
            database.add(Atom(NORM_SYMB, (Constant(symbol),)))
    if BLANK_SYMBOL not in machine.alphabet:
        database.add(Atom(NORM_SYMB, (Constant(BLANK_SYMBOL),)))
    return database


def sigma_star() -> TGDSet:
    """The fixed, machine-independent set Σ★ of Appendix A."""
    x1, x2, x3, x4, x5 = (Variable(f"t{i}") for i in range(1, 6))
    x, y, z, u, w = (Variable(name) for name in ("x", "y", "z", "u", "w"))
    xp, yp, zp, wp = (Variable(name) for name in ("xp", "yp", "zp", "wp"))

    tgds: List[TGD] = []

    # Move right, not at the end of the tape.
    tgds.append(
        TGD(
            body=(
                Atom(TRANS, (x1, x2, x3, x4, x5)),
                Atom(RDIR, (x5,)),
                Atom(NORM_SYMB, (w,)),
                Atom(HEAD, (x, x1, y)),
                Atom(TAPE, (x, x2, y)),
                Atom(TAPE, (y, w, z)),
            ),
            head=(
                Atom(L_EDGE, (x, xp)),
                Atom(R_EDGE, (y, yp)),
                Atom(R_EDGE, (z, zp)),
                Atom(TAPE, (xp, x4, yp)),
                Atom(HEAD, (yp, x3, zp)),
                Atom(TAPE, (yp, w, zp)),
            ),
            rule_id="tm_right",
        )
    )
    # Move right at the end of the tape (extend with a blank).
    tgds.append(
        TGD(
            body=(
                Atom(TRANS, (x1, x2, x3, x4, x5)),
                Atom(RDIR, (x5,)),
                Atom(BLANK, (u,)),
                Atom(END, (w,)),
                Atom(HEAD, (x, x1, y)),
                Atom(TAPE, (x, x2, y)),
                Atom(TAPE, (y, w, z)),
            ),
            head=(
                Atom(L_EDGE, (x, xp)),
                Atom(R_EDGE, (y, yp)),
                Atom(R_EDGE, (z, zp)),
                Atom(TAPE, (xp, x4, yp)),
                Atom(HEAD, (yp, x3, zp)),
                Atom(TAPE, (yp, u, zp)),
                Atom(TAPE, (zp, w, wp)),
            ),
            rule_id="tm_right_end",
        )
    )
    # Move left (the machine never reads beyond the first cell).
    tgds.append(
        TGD(
            body=(
                Atom(TRANS, (x1, x2, x3, x4, x5)),
                Atom(LDIR, (x5,)),
                Atom(TAPE, (x, w, y)),
                Atom(HEAD, (y, x1, z)),
                Atom(TAPE, (y, x2, z)),
            ),
            head=(
                Atom(R_EDGE, (x, xp)),
                Atom(R_EDGE, (y, yp)),
                Atom(L_EDGE, (z, zp)),
                Atom(HEAD, (xp, x3, yp)),
                Atom(TAPE, (xp, w, yp)),
                Atom(TAPE, (yp, x4, zp)),
            ),
            rule_id="tm_left",
        )
    )
    # Stay.
    tgds.append(
        TGD(
            body=(
                Atom(TRANS, (x1, x2, x3, x4, x5)),
                Atom(SDIR, (x5,)),
                Atom(HEAD, (x, x1, y)),
                Atom(TAPE, (x, x2, y)),
            ),
            head=(
                Atom(L_EDGE, (x, xp)),
                Atom(R_EDGE, (y, yp)),
                Atom(HEAD, (xp, x3, yp)),
                Atom(TAPE, (xp, x4, yp)),
            ),
            rule_id="tm_stay",
        )
    )
    # Copy untouched cells to the left and to the right of the head.
    tgds.append(
        TGD(
            body=(Atom(TAPE, (x, z, y)), Atom(L_EDGE, (y, yp))),
            head=(Atom(L_EDGE, (x, xp)), Atom(TAPE, (xp, z, yp))),
            rule_id="tm_copy_left",
        )
    )
    tgds.append(
        TGD(
            body=(Atom(TAPE, (x, z, y)), Atom(R_EDGE, (x, xp))),
            head=(Atom(TAPE, (xp, z, yp)), Atom(R_EDGE, (y, yp))),
            rule_id="tm_copy_right",
        )
    )
    return TGDSet(tgds, name="sigma_star")


def halting_machine() -> TuringMachine:
    """A machine that writes one symbol, moves right twice, and halts."""
    return TuringMachine(
        states=("q0", "q1", "q2"),
        alphabet=("a", BLANK_SYMBOL),
        transitions={
            ("q0", BLANK_SYMBOL): ("q1", "a", RIGHT),
            ("q1", BLANK_SYMBOL): ("q2", BLANK_SYMBOL, STAY),
        },
        initial_state="q0",
    )


def looping_machine() -> TuringMachine:
    """A machine that bounces on the first cell forever."""
    return TuringMachine(
        states=("q0", "q1"),
        alphabet=("a", BLANK_SYMBOL),
        transitions={
            ("q0", BLANK_SYMBOL): ("q1", "a", STAY),
            ("q1", "a"): ("q0", BLANK_SYMBOL, STAY),
            ("q0", "a"): ("q1", "a", STAY),
            ("q1", BLANK_SYMBOL): ("q0", BLANK_SYMBOL, STAY),
        },
        initial_state="q0",
    )
